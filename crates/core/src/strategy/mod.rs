//! The four autonomous load-balancing strategies of §IV (plus the smart
//! neighbor-injection variant of §VI-C), written against a
//! substrate-agnostic trait so the *same* strategy code runs on both the
//! oracle ring ([`crate::sim::Sim`]) and a real Chord protocol stack.
//!
//! # Architecture
//!
//! A [`Strategy`] never touches simulator state directly. It sees the
//! world through a [`NodeContext`] — the pairing of [`LocalView`] (what
//! the paper grants a node: its own load, Sybil budget, and successor
//! list) and [`Actions`] (what a node can do: query a neighbor's load,
//! spawn or retire Sybils, invite help). Each substrate implements the
//! context over its own data structures and pays for information
//! honestly: `query_load` costs one `LoadQuery` message on *both*
//! substrates, and `invite` one `Invitation`.
//!
//! Three scopes of strategy exist ([`StrategyScope`]):
//!
//! * **TickOnly** — [`churn::BackgroundChurn`] fires every tick through
//!   [`ChurnOps`], not on the check cadence.
//! * **PerNode** — the paper's Sybil strategies; each active worker gets
//!   a [`Strategy::check_node`] call every `check_interval` ticks.
//! * **Omniscient** — the centralized comparator, which legitimately
//!   sees everything via [`OracleView`]. Only the oracle-ring substrate
//!   provides that view; a real network cannot.
//!
//! [`StrategyStack`] composes layers (background churn under any Sybil
//! strategy) and [`stack_for`] builds the stack a [`SimConfig`] asks
//! for. The [`Substrate`] trait is the dispatch surface each engine
//! implements; control is inverted — the substrate builds its concrete
//! context and hands it to the strategy as `&mut dyn NodeContext` — so
//! substrates need no generics and strategies stay object-safe.
//!
//! Random injection additionally applies the §IV-B housekeeping rule —
//! *"if a node has at least one Sybil, but no work, it has its Sybils
//! quit the network"* — so stale Sybils release their ring positions
//! (and budget) for a fresh attempt in the same decision. The paper
//! describes no such rule for neighbor injection or invitation, and
//! their §VI results (both can trail plain churn) are consistent with
//! nodes getting permanently stuck once their Sybil budget is spent;
//! we reproduce that behavior.

pub mod churn;
pub mod crosscheck;
pub mod invitation;
pub mod neighbor;
pub mod oracle;
pub mod random;

use crate::config::{SimConfig, StrategyKind};
use crate::worker::WorkerId;
use autobal_id::Id;

/// The strategy-relevant configuration every node knows (§V: nodes are
/// told the job parameters at start-up).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyParams {
    /// A node at or below this load may volunteer a Sybil (§IV-B).
    pub sybil_threshold: u64,
    /// A node above this load calls for help (§IV-D).
    pub overload_threshold: u64,
    /// How many successors/predecessors a node tracks (§IV-C/§IV-D).
    pub num_neighbors: usize,
    /// §VII chosen-ID extension: split at the victim's task median.
    pub chosen_ids: bool,
    /// §VII extension: prefer the strongest eligible helper.
    pub strength_aware_invitation: bool,
}

/// What a node can *see* without spending messages: its own state plus
/// the neighbor lists Chord maintains anyway.
pub trait LocalView {
    /// Job parameters known network-wide.
    fn params(&self) -> StrategyParams;
    /// This worker's total remaining tasks across all its vnodes.
    fn load(&self) -> u64;
    /// Live Sybils this worker currently controls.
    fn sybil_count(&self) -> usize;
    /// Sybil budget still unspent.
    fn sybil_slots_left(&self) -> u32;
    /// Ring position of the worker's primary virtual node.
    fn primary(&self) -> Id;
    /// The worker's own vnode positions with their (self-known) loads:
    /// primary first, then static virtual servers, then Sybils.
    fn own_vnode_loads(&self) -> Vec<(Id, u64)>;
    /// The primary's successor list, nearest first (free: Chord state).
    fn successor_list(&self) -> Vec<Id>;
}

/// Why a strategy action failed. The oracle-ring substrate only ever
/// produces [`ActionError::Occupied`] (its transport is infallible);
/// the protocol substrate surfaces real network adversity as
/// [`ActionError::Unreachable`] / [`ActionError::TimedOut`], and
/// strategies are expected to degrade gracefully rather than panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionError {
    /// The requested ring position is already taken.
    Occupied,
    /// The peer is dead or behind a partition; no reply will ever come.
    Unreachable,
    /// The operation exhausted its retry budget on a lossy link.
    TimedOut,
}

impl std::fmt::Display for ActionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActionError::Occupied => write!(f, "ring position occupied"),
            ActionError::Unreachable => write!(f, "peer unreachable"),
            ActionError::TimedOut => write!(f, "operation timed out"),
        }
    }
}

/// What a node can *do* — every observable query is charged to the
/// substrate's message counters. Message-bearing actions are fallible:
/// on a real (faulty) network a probe can time out and a join can fail,
/// and each strategy defines its own fallback (see the strategy docs).
pub trait Actions {
    /// Asks `neighbor` for its remaining task count. Costs one
    /// `LoadQuery` message even when the reply is lost.
    fn query_load(&mut self, neighbor: Id) -> Result<u64, ActionError>;
    /// Draws a uniformly random ring address from the strategy stream.
    fn random_id(&mut self) -> Id;
    /// Joins a Sybil of this worker at `pos`; `Ok(acquired_tasks)` on
    /// success, `Err(Occupied)` if the position is taken, or a network
    /// error when the join itself could not complete.
    fn spawn_sybil(&mut self, pos: Id) -> Result<u64, ActionError>;
    /// All of this worker's Sybils quit the network.
    fn retire_sybils(&mut self);
    /// Where a Sybil targeting `victim`'s arc should land: the ID-space
    /// midpoint of the arc, or the victim's remaining-task median under
    /// the chosen-ID extension (when the substrate can compute it).
    fn split_target(&mut self, victim: Id) -> Option<Id>;
    /// Announces overload from own vnode `hot` to its predecessor list
    /// (§IV-D). The substrate selects the helper via
    /// [`invitation::pick_helper`] and performs the Sybil join. Costs
    /// one `Invitation` message unless no predecessor exists.
    fn invite(&mut self, hot: Id) -> InviteOutcome;
    /// Tells the substrate the upcoming [`Actions::spawn_sybil`] at
    /// `pos` came from the *gap estimate* (plain neighbor injection or
    /// the smart variant's no-answer fallback) rather than a measured
    /// probe. Pure observability — costs no messages, draws no RNG —
    /// so the default is a no-op and substrates without telemetry
    /// ignore it.
    fn note_gap_split(&mut self, _pos: Id) {}
    /// Asks `relay` what it believes `target`'s remaining task count
    /// is (replica knowledge: successors carry each other's key
    /// ranges). Costs one `LoadQuery` like a direct probe. The default
    /// falls back to asking `target` directly, which is exact on
    /// substrates without Byzantine reporters (the oracle ring).
    fn query_load_via(&mut self, _relay: Id, target: Id) -> Result<u64, ActionError> {
        self.query_load(target)
    }
    /// Telemetry hook: a cross-checking probe round about `target`
    /// finished with `agreed` (reporters within tolerance) and the
    /// robust `estimate`. No messages, no RNG; default no-op.
    fn note_probe(&mut self, _target: Id, _agreed: bool, _estimate: u64) {}
    /// Telemetry hook: `reporter` crossed the suspicion threshold and
    /// is quarantined from now on. No messages, no RNG; default no-op.
    fn note_quarantine(&mut self, _reporter: Id, _suspicion: u64) {}
}

/// Result of an [`Actions::invite`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InviteOutcome {
    /// The vnode has no predecessors to ask (degenerate ring); no
    /// invitation was sent or counted.
    NoNeighbors,
    /// The invitation was sent but no helper qualified (or the helper's
    /// join failed); counted as refused.
    Refused,
    /// The announcement was eaten by the network (loss or partition)
    /// before any predecessor heard it. Still costs the `Invitation`
    /// message; the node naturally re-announces on its next check.
    Unreachable,
    /// A helper split the inviter's arc and took `acquired` tasks.
    Helped { acquired: u64 },
}

/// The full per-node decision surface a substrate hands a strategy.
pub trait NodeContext: LocalView + Actions {}
impl<T: LocalView + Actions + ?Sized> NodeContext for T {}

/// Population-churn surface (§IV-A), exercised once per tick by
/// [`churn::BackgroundChurn`]. Methods mirror the simulator's original
/// churn loop exactly, RNG draw for RNG draw.
pub trait ChurnOps {
    /// Active workers eligible to leave this tick, in decision order.
    fn leave_candidates(&self) -> Vec<WorkerId>;
    /// Current active population.
    fn active_count(&self) -> usize;
    /// One Bernoulli trial against the churn RNG stream.
    fn flip(&mut self, p: f64) -> bool;
    /// `w` departs: its vnodes dissolve and it enters the waiting pool.
    fn depart(&mut self, w: WorkerId);
    /// Drains the waiting pool for this tick's join trials.
    fn take_waiting(&mut self) -> Vec<WorkerId>;
    /// Returns a non-joiner to the waiting pool.
    fn requeue_waiting(&mut self, w: WorkerId);
    /// `w` rejoins at a fresh random position, acquiring its arc's work.
    fn rejoin(&mut self, w: WorkerId);
}

/// The global view only a centralized coordinator has. Deliberately
/// *not* implementable on a real network — that asymmetry is the point
/// of the comparator.
pub trait OracleView {
    /// Total worker-table size (active and waiting).
    fn worker_count(&self) -> usize;
    fn is_worker_active(&self, w: WorkerId) -> bool;
    fn worker_load(&self, w: WorkerId) -> u64;
    /// Whether `w` may spawn a Sybil right now (active, under the
    /// threshold, budget left).
    fn worker_can_spawn(&self, w: WorkerId) -> bool;
    /// Every vnode's load, in ring order.
    fn vnode_loads(&self) -> Vec<(Id, u64)>;
    /// Live load of one vnode.
    fn vnode_load(&self, v: Id) -> u64;
    /// The median remaining-task key of `v`'s arc.
    fn median_task_key(&self, v: Id) -> Option<Id>;
    /// Forces worker `w` to spawn a Sybil at `pos`.
    fn spawn_sybil_for(&mut self, w: WorkerId, pos: Id) -> Option<u64>;
}

/// When and how a strategy layer is dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyScope {
    /// Runs every tick via [`Strategy::on_tick`] (churn).
    TickOnly,
    /// Runs per active worker on check ticks via
    /// [`Strategy::check_node`].
    PerNode,
    /// Runs once per check tick with the global view via
    /// [`Strategy::check_global`] (oracle-ring substrate only).
    Omniscient,
}

/// One load-balancing behavior, independent of the substrate it runs on.
pub trait Strategy: Send + Sync {
    /// Short label for traces and registries.
    fn name(&self) -> &'static str;
    /// Dispatch scope; defaults to per-node checks.
    fn scope(&self) -> StrategyScope {
        StrategyScope::PerNode
    }
    /// Called every tick, before any check (population churn).
    fn on_tick(&self, _ops: &mut dyn ChurnOps) {}
    /// Called per active worker on check ticks.
    fn check_node(&self, _ctx: &mut dyn NodeContext) {}
    /// Called once per check tick on substrates that can provide
    /// omniscience.
    fn check_global(&self, _view: &mut dyn OracleView) {}
}

/// The dispatch surface an execution engine implements. Control is
/// inverted: the substrate constructs its concrete node context
/// internally and passes it to the strategy, so implementations need no
/// associated types.
pub trait Substrate {
    /// Active workers in decision order (the order the original
    /// simulator iterated them: worker-table order, inactive skipped).
    fn decision_order(&self) -> Vec<WorkerId>;
    /// Runs `strategy.check_node` with `w`'s local context.
    fn check_worker(&mut self, w: WorkerId, strategy: &dyn Strategy);
    /// Runs `strategy.check_global` with the omniscient view, if this
    /// substrate has one. Returns `false` when it cannot.
    fn check_omniscient(&mut self, strategy: &dyn Strategy) -> bool;
    /// The substrate's churn surface.
    fn churn_ops(&mut self) -> &mut dyn ChurnOps;
}

/// An ordered composition of strategy layers — e.g. background churn
/// underneath random injection (§VI-B-1's "churn as turbulence").
#[derive(Default)]
pub struct StrategyStack {
    layers: Vec<Box<dyn Strategy>>,
}

impl StrategyStack {
    pub fn new() -> StrategyStack {
        StrategyStack::default()
    }

    pub fn push(&mut self, layer: Box<dyn Strategy>) {
        self.layers.push(layer);
    }

    pub fn len(&self) -> usize {
        self.layers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer labels in dispatch order.
    pub fn names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Runs the every-tick phase (churn layers).
    pub fn on_tick(&self, sub: &mut dyn Substrate) {
        for layer in &self.layers {
            if layer.scope() == StrategyScope::TickOnly {
                layer.on_tick(sub.churn_ops());
            }
        }
    }

    /// Does any layer dispatch per worker on check ticks? Event-time
    /// substrates use this to decide whether a check tick needs
    /// per-worker timer events at all.
    pub fn has_per_node(&self) -> bool {
        self.layers
            .iter()
            .any(|l| l.scope() == StrategyScope::PerNode)
    }

    /// Runs every `PerNode` layer for one worker — the scheduling hook
    /// event-time substrates dispatch from per-worker timer events.
    /// [`StrategyStack::on_check`] iterates layer-outer/worker-inner;
    /// this is worker-outer/layer-inner. The two orders coincide
    /// whenever at most one `PerNode` layer is stacked, which holds for
    /// every paper configuration (background churn is `TickOnly`; the
    /// Sybil strategies never stack with each other).
    pub fn check_one(&self, sub: &mut dyn Substrate, w: WorkerId) {
        for layer in &self.layers {
            if layer.scope() == StrategyScope::PerNode {
                sub.check_worker(w, layer.as_ref());
            }
        }
    }

    /// Runs the check-cadence phase (Sybil layers).
    pub fn on_check(&self, sub: &mut dyn Substrate) {
        for layer in &self.layers {
            match layer.scope() {
                StrategyScope::TickOnly => {}
                StrategyScope::PerNode => {
                    for w in sub.decision_order() {
                        sub.check_worker(w, layer.as_ref());
                    }
                }
                StrategyScope::Omniscient => {
                    let _ = sub.check_omniscient(layer.as_ref());
                }
            }
        }
    }
}

/// The strategy object for a [`StrategyKind`], if the kind does any
/// balancing beyond churn.
pub fn strategy_for(kind: StrategyKind) -> Option<Box<dyn Strategy>> {
    match kind {
        StrategyKind::None | StrategyKind::Churn => None,
        StrategyKind::RandomInjection => Some(Box::new(random::RandomInjection)),
        StrategyKind::NeighborInjection => Some(Box::new(neighbor::NeighborInjection::plain())),
        StrategyKind::SmartNeighbor => Some(Box::new(neighbor::NeighborInjection::smart())),
        StrategyKind::Invitation => Some(Box::new(invitation::Invitation)),
        StrategyKind::CentralizedOracle => Some(Box::new(oracle::CentralizedOracle)),
    }
}

/// Builds the layer stack a configuration asks for: background churn
/// first (whenever a churn rate or session model is set), then the
/// configured Sybil strategy.
pub fn stack_for(cfg: &SimConfig) -> StrategyStack {
    let mut stack = StrategyStack::new();
    if cfg.churn_enabled() {
        stack.push(Box::new(churn::BackgroundChurn {
            leave_p: cfg.leave_probability(),
            join_p: cfg.join_probability(),
        }));
    }
    if let Some(s) = strategy_for(cfg.strategy) {
        stack.push(s);
    }
    stack
}

/// Whether the node is eligible to create a new Sybil right now:
/// at/below the Sybil threshold with budget to spare (§IV-B).
pub fn eligible_to_spawn(view: &dyn LocalView) -> bool {
    view.load() <= view.params().sybil_threshold && view.sybil_slots_left() > 0
}

/// Applies the "idle with Sybils → Sybils quit" rule. Returns `true`
/// if the node retired Sybils this check.
pub fn retire_if_idle(ctx: &mut dyn NodeContext) -> bool {
    if ctx.load() == 0 && ctx.sybil_count() > 0 {
        ctx.retire_sybils();
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SimConfig, StrategyKind};
    use crate::sim::Sim;

    #[test]
    fn can_spawn_respects_threshold_and_budget() {
        let cfg = SimConfig {
            nodes: 10,
            tasks: 1000,
            sybil_threshold: 0,
            strategy: StrategyKind::RandomInjection,
            ..SimConfig::default()
        };
        let mut sim = Sim::new(cfg, 1);
        // Freshly placed nodes almost surely all have work; find one with
        // load > 0: not eligible.
        let busy = (0..10).find(|&i| sim.workers()[i].load > 0).unwrap();
        assert!(!eligible_to_spawn(&sim.node_ctx(busy)));
        // Drain one worker to zero.
        let victim = busy;
        while sim.workers()[victim].load > 0 {
            let v = sim.workers()[victim].primary;
            sim.ring.pop_task(v);
            sim.workers[victim].load -= 1;
        }
        assert!(eligible_to_spawn(&sim.node_ctx(victim)));
    }

    #[test]
    fn retire_if_idle_only_fires_with_sybils_and_no_work() {
        let cfg = SimConfig {
            nodes: 5,
            tasks: 100,
            strategy: StrategyKind::RandomInjection,
            ..SimConfig::default()
        };
        let mut sim = Sim::new(cfg, 2);
        assert!(!retire_if_idle(&mut sim.node_ctx(0))); // has work, no sybils
                                                        // Give worker 0 a sybil and drain it completely.
        let pos = autobal_id::Id::from(12345u64);
        sim.create_sybil(0, pos).unwrap();
        while sim.workers()[0].load > 0 {
            let vs: Vec<_> = sim.workers()[0].vnodes().collect();
            for v in vs {
                if sim.ring.pop_task(v) {
                    sim.workers[0].load -= 1;
                    break;
                }
            }
        }
        assert!(retire_if_idle(&mut sim.node_ctx(0)));
        assert!(sim.workers()[0].sybils.is_empty());
        assert_eq!(sim.messages().sybils_retired, 1);
    }

    #[test]
    fn registry_builds_the_expected_stacks() {
        let plain = stack_for(&SimConfig {
            strategy: StrategyKind::None,
            ..SimConfig::default()
        });
        assert!(plain.is_empty());

        let churn_only = stack_for(&SimConfig {
            strategy: StrategyKind::Churn,
            churn_rate: 0.05,
            ..SimConfig::default()
        });
        assert_eq!(churn_only.names(), ["churn"]);

        let composed = stack_for(&SimConfig {
            strategy: StrategyKind::SmartNeighbor,
            churn_rate: 0.01,
            ..SimConfig::default()
        });
        assert_eq!(composed.names(), ["churn", "smart-neighbor"]);
    }

    #[test]
    fn every_kind_resolves_to_its_strategy() {
        assert!(strategy_for(StrategyKind::None).is_none());
        assert!(strategy_for(StrategyKind::Churn).is_none());
        let named: Vec<&str> = [
            StrategyKind::RandomInjection,
            StrategyKind::NeighborInjection,
            StrategyKind::SmartNeighbor,
            StrategyKind::Invitation,
            StrategyKind::CentralizedOracle,
        ]
        .into_iter()
        .map(|k| strategy_for(k).unwrap().name())
        .collect();
        assert_eq!(
            named,
            [
                "random-injection",
                "neighbor-injection",
                "smart-neighbor",
                "invitation",
                "centralized-oracle"
            ]
        );
    }

    #[test]
    fn scopes_match_dispatch_expectations() {
        assert_eq!(
            churn::BackgroundChurn {
                leave_p: 0.1,
                join_p: 0.1
            }
            .scope(),
            StrategyScope::TickOnly
        );
        assert_eq!(random::RandomInjection.scope(), StrategyScope::PerNode);
        assert_eq!(oracle::CentralizedOracle.scope(), StrategyScope::Omniscient);
    }
}
