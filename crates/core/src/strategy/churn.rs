//! §IV-A *Churn* as a strategy layer.
//!
//! The paper's first observation is that churn alone balances load: a
//! departing node's tasks merge into its successor, and a joining node
//! immediately splits an arc and acquires work. Modeled here as a
//! [`StrategyScope::TickOnly`] layer so it can run standalone
//! ([`crate::config::StrategyKind::Churn`]) or compose underneath any
//! Sybil strategy as background turbulence (§VI-B-1).
//!
//! The loop mirrors the original simulator's churn tick exactly — same
//! candidate order, same RNG draw per candidate — so fixed-seed runs are
//! bit-identical across the refactor.

use super::{ChurnOps, Strategy, StrategyScope};

/// Bernoulli-per-tick churn: each active node leaves with probability
/// `leave_p`, each waiting node joins with probability `join_p`.
#[derive(Debug, Clone, Copy)]
pub struct BackgroundChurn {
    pub leave_p: f64,
    pub join_p: f64,
}

impl Strategy for BackgroundChurn {
    fn name(&self) -> &'static str {
        "churn"
    }

    fn scope(&self) -> StrategyScope {
        StrategyScope::TickOnly
    }

    fn on_tick(&self, ops: &mut dyn ChurnOps) {
        // Leaves. The last active node never leaves (the network would
        // vanish), and its trial is skipped, not drawn.
        for idx in ops.leave_candidates() {
            if ops.active_count() <= 1 {
                break;
            }
            if ops.flip(self.leave_p) {
                ops.depart(idx);
            }
        }
        // Joins.
        for idx in ops.take_waiting() {
            if ops.flip(self.join_p) {
                ops.rejoin(idx);
            } else {
                ops.requeue_waiting(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{SimConfig, StrategyKind};
    use crate::sim::Sim;

    #[test]
    fn churn_layer_moves_population_both_ways() {
        let cfg = SimConfig {
            nodes: 100,
            tasks: 5_000,
            strategy: StrategyKind::Churn,
            churn_rate: 0.05,
            ..SimConfig::default()
        };
        let res = Sim::new(cfg, 9).run();
        assert!(res.completed);
        assert!(res.messages.churn_leaves > 0);
        assert!(res.messages.churn_joins > 0);
    }

    #[test]
    fn network_never_fully_drains() {
        let cfg = SimConfig {
            nodes: 4,
            tasks: 400,
            strategy: StrategyKind::Churn,
            churn_rate: 0.9,
            ..SimConfig::default()
        };
        let mut sim = Sim::new(cfg, 10);
        for _ in 0..300 {
            sim.step();
            assert!(sim.active_workers() >= 1, "the last node must stay");
        }
    }
}
