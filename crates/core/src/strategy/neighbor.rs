//! §IV-C *Neighbor Injection* and §VI-C *Smart Neighbor Injection*.
//!
//! Underloaded nodes inject a Sybil near home instead of at random:
//!
//! * **Plain** — estimate: find the widest clockwise gap among the
//!   successor list (the node with the largest range has *potentially*
//!   received the most work) and split it at the midpoint. Costs no
//!   messages beyond the join itself.
//! * **Smart** — measure: query every successor's actual remaining task
//!   count (one `LoadQuery` each) and split the most-loaded successor's
//!   range instead.

use super::{NodeContext, Strategy};
use autobal_id::{ring, Id};

/// Neighbor injection, substrate-agnostic. `smart` selects the
/// load-querying variant.
#[derive(Debug, Clone, Copy)]
pub struct NeighborInjection {
    pub smart: bool,
}

impl NeighborInjection {
    pub fn plain() -> NeighborInjection {
        NeighborInjection { smart: false }
    }

    pub fn smart() -> NeighborInjection {
        NeighborInjection { smart: true }
    }
}

impl Strategy for NeighborInjection {
    fn name(&self) -> &'static str {
        if self.smart {
            "smart-neighbor"
        } else {
            "neighbor-injection"
        }
    }

    fn check_node(&self, ctx: &mut dyn NodeContext) {
        // Unlike random injection, the paper describes no Sybil-quitting
        // housekeeping here — a node whose five Sybils sit in dead
        // ranges is stuck, which is exactly the failure mode §VI-C
        // reports ("a loop of constantly checking the largest gap").
        if !super::eligible_to_spawn(ctx) {
            return;
        }
        let succs = ctx.successor_list();
        if succs.is_empty() {
            return;
        }
        let pos = if self.smart {
            match most_loaded_target(ctx, &succs) {
                Probe::Target(p) => p,
                Probe::Idle => return, // no successor has any work
                // Every probe was lost to the network: degrade to the
                // plain strategy's free estimate instead of stalling.
                Probe::NoAnswer => {
                    let pos = widest_gap_target(ctx.primary(), &succs);
                    ctx.note_gap_split(pos);
                    pos
                }
            }
        } else {
            let pos = widest_gap_target(ctx.primary(), &succs);
            ctx.note_gap_split(pos);
            pos
        };
        // Occupied midpoint (or a gap of width 1) simply skips this
        // check; the node will try again next interval.
        let _ = ctx.spawn_sybil(pos);
    }
}

/// Midpoint of the widest gap among `[primary, succs...]` — the plain
/// strategy's free estimate of where the most work sits.
pub fn widest_gap_target(primary: Id, succs: &[Id]) -> Id {
    let mut prev = primary;
    let mut best = (Id::ZERO, prev, prev);
    for &s in succs {
        let d = ring::distance(prev, s);
        if d > best.0 {
            best = (d, prev, s);
        }
        prev = s;
    }
    ring::midpoint(best.1, best.2)
}

/// Outcome of the smart variant's measurement round.
enum Probe {
    /// A loaded successor was measured and a split point computed.
    Target(Id),
    /// Every answering successor reported zero work (or the split point
    /// was degenerate) — nothing worth doing this check.
    Idle,
    /// No probe got an answer at all; the measurement failed wholesale
    /// and the caller should fall back to estimating.
    NoAnswer,
}

/// Split point of the most-loaded successor's range — the smart
/// variant's measured target, one `LoadQuery` per successor. Ties go to
/// the later list entry (matching `Iterator::max_by_key`). Probes the
/// network ate are simply skipped: a partial answer set still beats the
/// plain strategy's estimate.
fn most_loaded_target(ctx: &mut dyn NodeContext, succs: &[Id]) -> Probe {
    let mut best: Option<(Id, u64)> = None;
    let mut answered = false;
    for &s in succs {
        let Ok(l) = ctx.query_load(s) else { continue };
        answered = true;
        if best.is_none_or(|(_, bl)| l >= bl) {
            best = Some((s, l));
        }
    }
    if !answered {
        return Probe::NoAnswer;
    }
    match best {
        Some((best, load)) if load > 0 => match ctx.split_target(best) {
            Some(p) => Probe::Target(p),
            None => Probe::Idle,
        },
        _ => Probe::Idle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SimConfig, StrategyKind};
    use crate::sim::Sim;

    fn cfg(strategy: StrategyKind) -> SimConfig {
        SimConfig {
            nodes: 100,
            tasks: 10_000,
            strategy,
            ..SimConfig::default()
        }
    }

    #[test]
    fn widest_gap_picks_the_hole() {
        let primary = Id::from(0u64);
        let succs = vec![Id::from(10u64), Id::from(20u64), Id::from(520u64)];
        let t = widest_gap_target(primary, &succs);
        // Gap (20, 520] is widest; midpoint 270.
        assert_eq!(t, Id::from(270u64));
    }

    #[test]
    fn widest_gap_can_be_the_first_arc() {
        let primary = Id::from(0u64);
        let succs = vec![Id::from(1000u64), Id::from(1010u64)];
        assert_eq!(widest_gap_target(primary, &succs), Id::from(500u64));
    }

    #[test]
    fn plain_neighbor_beats_baseline() {
        let base = Sim::new(cfg(StrategyKind::None), 1).run();
        let ni = Sim::new(cfg(StrategyKind::NeighborInjection), 1).run();
        assert!(ni.completed);
        assert!(
            ni.runtime_factor < base.runtime_factor,
            "neighbor {} vs baseline {}",
            ni.runtime_factor,
            base.runtime_factor
        );
    }

    #[test]
    fn smart_uses_load_queries_plain_does_not() {
        let plain = Sim::new(cfg(StrategyKind::NeighborInjection), 2).run();
        let smart = Sim::new(cfg(StrategyKind::SmartNeighbor), 2).run();
        assert_eq!(plain.messages.load_queries, 0);
        assert!(smart.messages.load_queries > 0);
    }

    #[test]
    fn smart_at_least_as_good_as_plain_on_average() {
        // §VI-C: probing "improved the runtime factor by 1.2 on average".
        // Average a few seeds to dodge single-run noise.
        let mut plain_sum = 0.0;
        let mut smart_sum = 0.0;
        for seed in 0..6 {
            plain_sum += Sim::new(cfg(StrategyKind::NeighborInjection), seed)
                .run()
                .runtime_factor;
            smart_sum += Sim::new(cfg(StrategyKind::SmartNeighbor), seed)
                .run()
                .runtime_factor;
        }
        assert!(
            smart_sum < plain_sum,
            "smart {smart_sum} should beat plain {plain_sum} on average"
        );
    }

    #[test]
    fn tasks_conserved() {
        let mut sim = Sim::new(cfg(StrategyKind::SmartNeighbor), 3);
        let mut consumed = 0;
        for _ in 0..60 {
            consumed += sim.step();
        }
        assert_eq!(sim.remaining_tasks() + consumed, 10_000);
        sim.ring().check_invariants().unwrap();
    }

    #[test]
    fn sybils_stay_within_successor_horizon() {
        // Every Sybil a plain-neighbor node creates must land within its
        // successor list's span at creation time — spot-check that the
        // strategy creates Sybils at all and the ring stays sane.
        let res = Sim::new(cfg(StrategyKind::NeighborInjection), 4).run();
        assert!(res.messages.sybils_created > 0);
    }
}
