//! # autobal-core
//!
//! The paper's primary contribution: a tick-driven simulator of
//! **autonomous load balancing in a Chord DHT** via induced churn and
//! controlled Sybil attacks (Rosen, Levin & Bourgeois, 2021).
//!
//! A [`Sim`] holds a ring of *virtual nodes* (primaries and Sybils) owned
//! by physical *workers*. Each tick:
//!
//! 1. the configured [`StrategyKind`] may act (churn coin-flips every
//!    tick; Sybil strategies check every `check_interval` ticks);
//! 2. every active worker consumes up to its capacity in tasks;
//! 3. metrics are recorded (work per tick, workload snapshots).
//!
//! The run ends when every task is consumed; the headline output is the
//! **runtime factor** — measured ticks over the ideal runtime
//! `tasks / Σ capacity` (§V-C of the paper).
//!
//! ```
//! use autobal_core::{Sim, SimConfig, StrategyKind};
//!
//! let cfg = SimConfig {
//!     nodes: 100,
//!     tasks: 10_000,
//!     strategy: StrategyKind::RandomInjection,
//!     ..SimConfig::default()
//! };
//! let result = Sim::new(cfg, 42).run();
//! assert!(result.completed);
//! // Random injection lands well under the no-strategy factor (~5).
//! assert!(result.runtime_factor < 4.0);
//! ```

pub mod config;
pub mod metrics;
pub mod ring;
pub mod shard;
pub mod sim;
pub mod strategy;
pub mod trace;
pub mod worker;

pub use config::{ChurnModel, Heterogeneity, SimConfig, StrategyKind, WorkMeasurement};
pub use metrics::{RunResult, SimMessageStats, Snapshot, TickSeries};
pub use ring::Ring;
pub use shard::{RingStore, ShardedRing, MAX_SHARDS};
pub use sim::Sim;
pub use trace::{EventLog, SimEvent};
pub use worker::{Worker, WorkerId, WorkerState};
