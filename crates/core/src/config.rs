//! Experiment configuration, mirroring §V-B "Experimental Variables".

/// Which autonomous load-balancing strategy the network runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StrategyKind {
    /// No strategy and no churn — the paper's baseline comparison
    /// network.
    None,
    /// §IV-A *Induced Churn*: every tick each active node leaves with
    /// probability `churn_rate`, and each waiting node joins with the
    /// same probability.
    Churn,
    /// §IV-B *Random Injection*: nodes at or below `sybil_threshold`
    /// create one Sybil at a uniformly random address every
    /// `check_interval` ticks.
    RandomInjection,
    /// §IV-C *Neighbor Injection*: underloaded nodes place a Sybil in
    /// the widest gap among their successor list (a free estimate of the
    /// most-loaded neighbor).
    NeighborInjection,
    /// §VI-C *Smart Neighbor Injection*: like neighbor injection, but
    /// queries each successor's actual load (one message each) and
    /// splits the most-loaded successor's range.
    SmartNeighbor,
    /// §IV-D *Invitation*: overloaded nodes announce for help; their
    /// least-loaded eligible predecessor injects a Sybil into the
    /// inviter's range.
    Invitation,
    /// **Not a paper strategy** — an omniscient centralized coordinator
    /// that optimally pairs idle workers with the most-loaded virtual
    /// nodes each check tick. Serves as the best-case comparator the
    /// paper's §I/§II centralization discussion implies; the gap to
    /// `RandomInjection` is the measured price of decentralization.
    CentralizedOracle,
}

impl StrategyKind {
    /// All strategies, in the order the paper presents them.
    pub const ALL: [StrategyKind; 6] = [
        StrategyKind::None,
        StrategyKind::Churn,
        StrategyKind::RandomInjection,
        StrategyKind::NeighborInjection,
        StrategyKind::SmartNeighbor,
        StrategyKind::Invitation,
    ];

    /// A short lowercase label used in CSV output and bench ids.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::None => "none",
            StrategyKind::Churn => "churn",
            StrategyKind::RandomInjection => "random",
            StrategyKind::NeighborInjection => "neighbor",
            StrategyKind::SmartNeighbor => "smart",
            StrategyKind::Invitation => "invitation",
            StrategyKind::CentralizedOracle => "oracle",
        }
    }
}

/// Node strength distribution (§V-B *Homogeneity*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Heterogeneity {
    /// Every node has strength 1.
    Homogeneous,
    /// Strength drawn uniformly from `1..=max_sybils` per node.
    Heterogeneous,
}

/// How much work a node completes per tick (§V-B *Work Measurement*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WorkMeasurement {
    /// One task per tick regardless of strength (the default).
    OnePerTick,
    /// `strength` tasks per tick.
    StrengthPerTick,
}

/// How nodes enter and leave the network over time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ChurnModel {
    /// The paper's model: memoryless per-tick coin flips at `churn_rate`
    /// for both leaving and joining ("we assume churn is constant
    /// throughout the experiment and that the joining and leaving rates
    /// are equal", §V-B).
    #[default]
    Bernoulli,
    /// Session-based churn: geometric on/off session lengths with the
    /// given mean durations in ticks. Measured P2P session behavior is
    /// heavily asymmetric (long downtimes, shorter uptimes); this knob
    /// relaxes the paper's equal-rates assumption. The expected active
    /// fraction converges to `mean_uptime / (mean_uptime +
    /// mean_downtime)` of the total population.
    Sessions {
        /// Mean ticks a node stays in the network per session (>= 1).
        mean_uptime: f64,
        /// Mean ticks a node waits before rejoining (>= 1).
        mean_downtime: f64,
    },
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimConfig {
    /// Initial network size (§V-B *Network Size*).
    pub nodes: usize,
    /// Job size in tasks (§V-B *Number of Tasks*).
    pub tasks: u64,
    /// The load-balancing strategy.
    pub strategy: StrategyKind,
    /// Per-tick leave/join probability (§V-B *Churn Rate*; default 0).
    /// Applies to the `Churn` strategy, and as optional background churn
    /// for Sybil strategies (the §VI-B-1 "churn has no positive impact"
    /// experiment).
    pub churn_rate: f64,
    /// Tasks at or below which a node may create a Sybil (§V-B *Sybil
    /// Threshold*; default 0 — "a node must finish all their tasks").
    pub sybil_threshold: u64,
    /// Maximum simultaneous Sybils per node in a homogeneous network; in
    /// a heterogeneous network the node's strength is the cap (§V-B
    /// *Max Sybils*; default 5, also tested at 10).
    pub max_sybils: u32,
    /// Successor-list (and predecessor-list) length (§V-B *Successors*;
    /// default 5, also tested at 10).
    pub num_successors: usize,
    /// Homogeneous vs heterogeneous strengths.
    pub heterogeneity: Heterogeneity,
    /// Tasks consumed per tick.
    pub work_measurement: WorkMeasurement,
    /// Sybil strategies check their workload every this many ticks
    /// (§IV-B: "This check occurs every 5 ticks").
    pub check_interval: u64,
    /// Invitation only: a node considers itself overburdened when its
    /// load exceeds `overload_factor × (tasks / nodes)`. Nodes know the
    /// job size (§V), so this is locally computable. See DESIGN.md.
    pub overload_factor: f64,
    /// Ticks at which to capture full workload snapshots (for the
    /// Figure 4–14 histograms). Tick 0 = initial distribution.
    pub snapshot_ticks: Vec<u64>,
    /// Safety valve: abort (with `completed = false`) after this many
    /// ticks. `None` picks `max(10_000, 100 × ideal)` automatically.
    pub max_ticks: Option<u64>,
    /// §VII future-work extension: invitation helpers are chosen by
    /// *strength* (strongest eligible predecessor) instead of least
    /// load, so work migrates toward capable machines. Default off —
    /// the paper's published strategy.
    #[cfg_attr(feature = "serde", serde(default))]
    pub strength_aware_invitation: bool,
    /// §VII future-work extension: drop the "nodes cannot choose their
    /// own ID" assumption. Sybils targeting a specific virtual node
    /// (neighbor/smart/invitation) are planted at the *task median* of
    /// the victim's arc — guaranteeing they acquire half its remaining
    /// work — instead of the ID-space midpoint. Default off.
    #[cfg_attr(feature = "serde", serde(default))]
    pub chosen_ids: bool,
    /// The churn process (extension; default = the paper's Bernoulli
    /// equal-rates model).
    #[cfg_attr(feature = "serde", serde(default))]
    pub churn_model: ChurnModel,
    /// When `Some(k)`, record a [`crate::metrics::TickSeries`] sample
    /// every `k` ticks (plus tick 0 and the final tick). Gini is
    /// O(n log n) per sample, so prefer k ≥ 5 on big networks.
    #[cfg_attr(feature = "serde", serde(default))]
    pub series_interval: Option<u64>,
    /// Classic *static virtual servers* baseline (Stoica et al. §6.3 /
    /// Karger & Ruhl): every worker starts with this many ring
    /// positions instead of one. `log₂ n` virtual servers flatten the
    /// max arc to O(1/n) — the centralized-setup alternative the
    /// paper's autonomous strategies compete against. Default 1 (the
    /// paper's model).
    #[cfg_attr(feature = "serde", serde(default = "one"))]
    pub virtual_nodes_per_worker: u32,
    /// Record a [`crate::trace::SimEvent`] for every load-balancing
    /// action into `RunResult::events` (off by default — costs memory
    /// proportional to the number of actions).
    #[cfg_attr(feature = "serde", serde(default))]
    pub record_events: bool,
    /// Record a span-structured flight-recorder trace into
    /// `RunResult::trace` (off by default; see `autobal-telemetry`).
    /// Stamped with ticks, never wall-clock, so same-seed traces are
    /// byte-identical.
    #[cfg_attr(feature = "serde", serde(default))]
    pub record_trace: bool,
    /// Record streaming metrics samples into `RunResult::metrics` (off
    /// by default; see `autobal-metrics`). Counters ride the same emit
    /// funnels as the trace plane; fairness gauges come from the
    /// incremental load distribution, bit-equal to the batch sweep.
    #[cfg_attr(feature = "serde", serde(default))]
    pub record_metrics: bool,
    /// Metrics sampling cadence in ticks (used when `record_metrics`;
    /// `None` falls back to `series_interval`, then 1). Tick 0 and the
    /// final tick are always sampled.
    #[cfg_attr(feature = "serde", serde(default))]
    pub metrics_interval: Option<u64>,
    /// Include a per-worker ring snapshot in every metrics sample
    /// (monitor food; O(workers) per sample, so off by default).
    #[cfg_attr(feature = "serde", serde(default))]
    pub metrics_ring: bool,
    /// Number of arc-range ring shards for the tick engine. `1` (the
    /// default) runs the classic ordered-map engine; `>= 2` switches to
    /// the sharded struct-of-arrays engine, which partitions the
    /// identifier ring into contiguous arcs and batches cross-shard
    /// effects at the tick barrier. `0` means auto: one shard per
    /// available hardware thread. Results are bit-for-bit identical for
    /// every shard count (see `crate::shard`).
    #[cfg_attr(feature = "serde", serde(default = "one"))]
    pub shards: u32,
}

fn one() -> u32 {
    1
}

impl Default for SimConfig {
    /// The paper's defaults (§V-B): homogeneous, one task per tick,
    /// churn 0, threshold 0, maxSybils 5, 5 successors, 5-tick checks.
    fn default() -> SimConfig {
        SimConfig {
            nodes: 1000,
            tasks: 100_000,
            strategy: StrategyKind::None,
            churn_rate: 0.0,
            sybil_threshold: 0,
            max_sybils: 5,
            num_successors: 5,
            heterogeneity: Heterogeneity::Homogeneous,
            work_measurement: WorkMeasurement::OnePerTick,
            check_interval: 5,
            overload_factor: 2.0,
            snapshot_ticks: Vec::new(),
            max_ticks: None,
            strength_aware_invitation: false,
            chosen_ids: false,
            churn_model: ChurnModel::Bernoulli,
            series_interval: None,
            virtual_nodes_per_worker: 1,
            record_events: false,
            record_trace: false,
            record_metrics: false,
            metrics_interval: None,
            metrics_ring: false,
            shards: 1,
        }
    }
}

impl SimConfig {
    /// The ideal runtime in ticks: `ceil(tasks / Σ capacity)` where
    /// Σ capacity is the initial network's total per-tick throughput
    /// (§V-C). For heterogeneous strength-based consumption the expected
    /// capacity `n·(1+max)/2` is used.
    pub fn ideal_ticks(&self) -> u64 {
        let cap = self.expected_total_capacity().max(1.0);
        (self.tasks as f64 / cap).ceil() as u64
    }

    /// Expected total tasks the initial network consumes per tick.
    pub fn expected_total_capacity(&self) -> f64 {
        match self.work_measurement {
            WorkMeasurement::OnePerTick => self.nodes as f64,
            WorkMeasurement::StrengthPerTick => match self.heterogeneity {
                Heterogeneity::Homogeneous => self.nodes as f64,
                Heterogeneity::Heterogeneous => {
                    self.nodes as f64 * (1.0 + self.max_sybils as f64) / 2.0
                }
            },
        }
    }

    /// Whether any churn process is active (used to decide if a waiting
    /// pool must be provisioned).
    pub fn churn_enabled(&self) -> bool {
        self.churn_rate > 0.0 || matches!(self.churn_model, ChurnModel::Sessions { .. })
    }

    /// Per-tick leave probability under the configured churn model.
    pub fn leave_probability(&self) -> f64 {
        match self.churn_model {
            ChurnModel::Bernoulli => self.churn_rate,
            ChurnModel::Sessions { mean_uptime, .. } => 1.0 / mean_uptime.max(1.0),
        }
    }

    /// Per-tick join probability under the configured churn model.
    pub fn join_probability(&self) -> f64 {
        match self.churn_model {
            ChurnModel::Bernoulli => self.churn_rate,
            ChurnModel::Sessions { mean_downtime, .. } => 1.0 / mean_downtime.max(1.0),
        }
    }

    /// The invitation strategy's overload cutoff in tasks.
    pub fn overload_threshold(&self) -> u64 {
        (self.overload_factor * self.tasks as f64 / self.nodes.max(1) as f64).ceil() as u64
    }

    /// Effective tick cap for the run loop.
    pub fn effective_max_ticks(&self) -> u64 {
        self.max_ticks
            .unwrap_or_else(|| (self.ideal_ticks().saturating_mul(100)).max(10_000))
    }

    /// Resolved shard count for the tick engine: `0` maps to the number
    /// of available hardware threads, and the result is clamped to
    /// `1..=MAX_SHARDS`. Purely a partitioning knob — the simulation
    /// outcome is identical for every value (see `crate::shard`).
    pub fn resolved_shards(&self) -> usize {
        let raw = if self.shards == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.shards as usize
        };
        raw.clamp(1, crate::shard::MAX_SHARDS)
    }

    /// Validates the configuration, returning a human-readable complaint
    /// for nonsensical setups.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("network must start with at least one node".into());
        }
        if !(0.0..=1.0).contains(&self.churn_rate) {
            return Err(format!("churn_rate {} outside [0, 1]", self.churn_rate));
        }
        if self.check_interval == 0 {
            return Err("check_interval must be at least 1".into());
        }
        if self.num_successors == 0 {
            return Err("num_successors must be at least 1".into());
        }
        if self.overload_factor <= 0.0 {
            return Err("overload_factor must be positive".into());
        }
        if let ChurnModel::Sessions {
            mean_uptime,
            mean_downtime,
        } = self.churn_model
        {
            if mean_uptime < 1.0 || mean_downtime < 1.0 {
                return Err("session means must be at least one tick".into());
            }
        }
        if self.virtual_nodes_per_worker == 0 {
            return Err("virtual_nodes_per_worker must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::default();
        assert_eq!(c.nodes, 1000);
        assert_eq!(c.tasks, 100_000);
        assert_eq!(c.churn_rate, 0.0);
        assert_eq!(c.sybil_threshold, 0);
        assert_eq!(c.max_sybils, 5);
        assert_eq!(c.num_successors, 5);
        assert_eq!(c.check_interval, 5);
        assert_eq!(c.heterogeneity, Heterogeneity::Homogeneous);
        assert_eq!(c.work_measurement, WorkMeasurement::OnePerTick);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn ideal_ticks_one_per_tick() {
        let c = SimConfig {
            nodes: 1000,
            tasks: 100_000,
            ..SimConfig::default()
        };
        assert_eq!(c.ideal_ticks(), 100);
        let c2 = SimConfig {
            nodes: 1000,
            tasks: 100_001,
            ..SimConfig::default()
        };
        assert_eq!(c2.ideal_ticks(), 101);
    }

    #[test]
    fn ideal_ticks_heterogeneous_strength() {
        let c = SimConfig {
            nodes: 100,
            tasks: 30_000,
            heterogeneity: Heterogeneity::Heterogeneous,
            work_measurement: WorkMeasurement::StrengthPerTick,
            max_sybils: 5,
            ..SimConfig::default()
        };
        // Expected capacity 100·3 = 300 → ideal 100.
        assert_eq!(c.ideal_ticks(), 100);
    }

    #[test]
    fn overload_threshold_scales_with_mean() {
        let c = SimConfig {
            nodes: 100,
            tasks: 10_000,
            overload_factor: 2.0,
            ..SimConfig::default()
        };
        assert_eq!(c.overload_threshold(), 200);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let bad = [
            SimConfig {
                nodes: 0,
                ..SimConfig::default()
            },
            SimConfig {
                churn_rate: 1.5,
                ..SimConfig::default()
            },
            SimConfig {
                check_interval: 0,
                ..SimConfig::default()
            },
            SimConfig {
                num_successors: 0,
                ..SimConfig::default()
            },
            SimConfig {
                overload_factor: 0.0,
                ..SimConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} should be invalid");
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            StrategyKind::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), StrategyKind::ALL.len());
    }

    #[test]
    fn effective_max_ticks_has_floor() {
        let c = SimConfig {
            nodes: 10,
            tasks: 100,
            ..SimConfig::default()
        };
        assert!(c.effective_max_ticks() >= 10_000);
        let c2 = SimConfig {
            max_ticks: Some(500),
            ..SimConfig::default()
        };
        assert_eq!(c2.effective_max_ticks(), 500);
    }
}

#[cfg(test)]
mod churn_model_tests {
    use super::*;

    #[test]
    fn bernoulli_probabilities_mirror_rate() {
        let c = SimConfig {
            churn_rate: 0.01,
            ..SimConfig::default()
        };
        assert_eq!(c.leave_probability(), 0.01);
        assert_eq!(c.join_probability(), 0.01);
        assert!(c.churn_enabled());
    }

    #[test]
    fn zero_rate_bernoulli_disables_churn() {
        let c = SimConfig::default();
        assert!(!c.churn_enabled());
        assert_eq!(c.leave_probability(), 0.0);
    }

    #[test]
    fn session_probabilities_are_inverse_means() {
        let c = SimConfig {
            churn_model: ChurnModel::Sessions {
                mean_uptime: 200.0,
                mean_downtime: 50.0,
            },
            ..SimConfig::default()
        };
        assert!(c.churn_enabled());
        assert!((c.leave_probability() - 0.005).abs() < 1e-12);
        assert!((c.join_probability() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn session_means_validated() {
        let c = SimConfig {
            churn_model: ChurnModel::Sessions {
                mean_uptime: 0.5,
                mean_downtime: 10.0,
            },
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_model_is_bernoulli() {
        assert_eq!(ChurnModel::default(), ChurnModel::Bernoulli);
    }
}
