//! Physical workers: the machines behind the ring's virtual nodes.

use autobal_id::Id;

/// Index of a worker in the simulation's worker table.
pub type WorkerId = usize;

/// Whether a worker is participating or sitting in the churn pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WorkerState {
    /// Active in the ring with at least a primary virtual node.
    Active,
    /// In the waiting pool (churn strategy): no ring presence.
    Waiting,
}

/// A physical machine. It owns one *primary* virtual node while active,
/// plus up to its Sybil budget of additional virtual nodes.
#[derive(Debug, Clone)]
pub struct Worker {
    /// Ring position of the primary virtual node (meaningless while
    /// waiting).
    pub primary: Id,
    /// Ring positions of this worker's Sybil virtual nodes.
    pub sybils: Vec<Id>,
    /// Static virtual-server positions (the classic baseline); never
    /// retired, created only at setup.
    pub statics: Vec<Id>,
    /// Node strength: 1 in homogeneous networks, `U(1, maxSybils)` in
    /// heterogeneous ones. Dictates per-tick capacity under
    /// strength-based work measurement and the Sybil cap in
    /// heterogeneous networks (§V-B).
    pub strength: u32,
    /// Active vs waiting.
    pub state: WorkerState,
    /// Cached total tasks across this worker's virtual nodes; maintained
    /// by the simulator so strategy checks are O(1).
    pub load: u64,
}

impl Worker {
    /// A fresh active worker with the given primary position.
    pub fn active(primary: Id, strength: u32) -> Worker {
        Worker {
            primary,
            sybils: Vec::new(),
            statics: Vec::new(),
            strength,
            state: WorkerState::Active,
            load: 0,
        }
    }

    /// A worker parked in the waiting pool.
    pub fn waiting(strength: u32) -> Worker {
        Worker {
            primary: Id::ZERO,
            sybils: Vec::new(),
            statics: Vec::new(),
            strength,
            state: WorkerState::Waiting,
            load: 0,
        }
    }

    /// Is this worker active in the ring?
    pub fn is_active(&self) -> bool {
        self.state == WorkerState::Active
    }

    /// Tasks this worker completes per tick under the given work model.
    pub fn capacity(&self, strength_based: bool) -> u64 {
        if strength_based {
            self.strength as u64
        } else {
            1
        }
    }

    /// Maximum simultaneous Sybils: `max_sybils` when homogeneous,
    /// `strength` when heterogeneous (§IV-B).
    pub fn sybil_budget(&self, max_sybils: u32, heterogeneous: bool) -> u32 {
        if heterogeneous {
            self.strength
        } else {
            max_sybils
        }
    }

    /// Remaining Sybil slots.
    pub fn sybil_slots_left(&self, max_sybils: u32, heterogeneous: bool) -> u32 {
        self.sybil_budget(max_sybils, heterogeneous)
            .saturating_sub(self.sybils.len() as u32)
    }

    /// All ring positions this worker controls (primary first, then
    /// static virtual servers, then Sybils).
    pub fn vnodes(&self) -> impl Iterator<Item = Id> + '_ {
        let count = if self.is_active() {
            1 + self.statics.len() + self.sybils.len()
        } else {
            0
        };
        std::iter::once(self.primary)
            .chain(self.statics.iter().copied())
            .chain(self.sybils.iter().copied())
            .take(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u64) -> Id {
        Id::from(v)
    }

    #[test]
    fn capacity_follows_work_model() {
        let w = Worker::active(id(1), 4);
        assert_eq!(w.capacity(false), 1);
        assert_eq!(w.capacity(true), 4);
    }

    #[test]
    fn sybil_budget_homogeneous_vs_heterogeneous() {
        let w = Worker::active(id(1), 3);
        assert_eq!(w.sybil_budget(5, false), 5);
        assert_eq!(w.sybil_budget(5, true), 3);
    }

    #[test]
    fn sybil_slots_shrink_as_sybils_spawn() {
        let mut w = Worker::active(id(1), 1);
        assert_eq!(w.sybil_slots_left(5, false), 5);
        w.sybils.push(id(10));
        w.sybils.push(id(20));
        assert_eq!(w.sybil_slots_left(5, false), 3);
        w.sybils.extend([id(30), id(40), id(50)]);
        assert_eq!(w.sybil_slots_left(5, false), 0);
        // Over budget never underflows.
        w.sybils.push(id(60));
        assert_eq!(w.sybil_slots_left(5, false), 0);
    }

    #[test]
    fn vnodes_lists_primary_then_sybils() {
        let mut w = Worker::active(id(1), 1);
        w.sybils.push(id(2));
        let v: Vec<Id> = w.vnodes().collect();
        assert_eq!(v, vec![id(1), id(2)]);
    }

    #[test]
    fn waiting_worker_has_no_vnodes() {
        let w = Worker::waiting(2);
        assert!(!w.is_active());
        assert_eq!(w.vnodes().count(), 0);
    }
}
