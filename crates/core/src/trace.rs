//! Structured event log — a postmortem record of every load-balancing
//! action a run took (enabled by `SimConfig::record_events`).
//!
//! The paper's analysis is aggregate (runtime factors, histograms); the
//! event log supports the per-decision questions those aggregates hide:
//! *which* nodes created Sybils, how much work each acquisition moved,
//! how often invitations bounced.

use crate::worker::WorkerId;
use autobal_id::Id;

/// One load-balancing event.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SimEvent {
    /// A worker planted a Sybil and acquired `acquired` tasks.
    SybilCreated {
        tick: u64,
        worker: WorkerId,
        pos: Id,
        acquired: u64,
    },
    /// A worker's idle Sybils quit the ring.
    SybilsRetired {
        tick: u64,
        worker: WorkerId,
        count: u32,
    },
    /// A worker left via churn; its tasks moved to successors.
    WorkerLeft { tick: u64, worker: WorkerId },
    /// A worker crash-failed (fault plane); `keys_lost` tasks had no
    /// live replica and are gone for good.
    WorkerCrashed {
        tick: u64,
        worker: WorkerId,
        keys_lost: u64,
    },
    /// A waiting worker joined at `pos`, acquiring `acquired` tasks.
    WorkerJoined {
        tick: u64,
        worker: WorkerId,
        pos: Id,
        acquired: u64,
    },
    /// An overloaded worker asked its predecessors for help.
    InvitationSent { tick: u64, worker: WorkerId },
    /// No predecessor could honor the invitation.
    InvitationRefused { tick: u64, worker: WorkerId },
    /// Predecessor `helper` honored `worker`'s invitation, taking over
    /// `acquired` tasks.
    InvitationHonored {
        tick: u64,
        worker: WorkerId,
        helper: WorkerId,
        acquired: u64,
    },
    /// A worker probed `neighbor` and learned it holds `load` tasks
    /// (smart-neighbor strategies).
    LoadQueried {
        tick: u64,
        worker: WorkerId,
        neighbor: Id,
        load: u64,
    },
    /// A neighbor-injection strategy chose to split the widest
    /// successor gap at `pos` (either directly or as the fallback
    /// after an unanswered load probe).
    NeighborGapSplit {
        tick: u64,
        worker: WorkerId,
        pos: Id,
    },
    /// Byzantine worker `worker` answered a load probe about vnode
    /// `about` with the distorted value `reported` (adversary plane).
    LoadLied {
        tick: u64,
        worker: WorkerId,
        about: Id,
        reported: u64,
    },
    /// A cross-checking probe round about `target` found every
    /// reporter within tolerance of the `estimate`.
    ProbeAgreed {
        tick: u64,
        worker: WorkerId,
        target: Id,
        estimate: u64,
    },
    /// A cross-checking probe round about `target` caught at least one
    /// reporter conflicting with the `estimate`.
    ProbeConflict {
        tick: u64,
        worker: WorkerId,
        target: Id,
        estimate: u64,
    },
    /// Reporter vnode `reporter` crossed the suspicion threshold
    /// (`suspicion` booked conflicts) and is quarantined by `worker`'s
    /// cross-checking defense.
    Quarantined {
        tick: u64,
        worker: WorkerId,
        reporter: Id,
        suspicion: u64,
    },
}

impl SimEvent {
    /// The tick the event occurred at.
    pub fn tick(&self) -> u64 {
        match self {
            SimEvent::SybilCreated { tick, .. }
            | SimEvent::SybilsRetired { tick, .. }
            | SimEvent::WorkerLeft { tick, .. }
            | SimEvent::WorkerCrashed { tick, .. }
            | SimEvent::WorkerJoined { tick, .. }
            | SimEvent::InvitationSent { tick, .. }
            | SimEvent::InvitationRefused { tick, .. }
            | SimEvent::InvitationHonored { tick, .. }
            | SimEvent::LoadQueried { tick, .. }
            | SimEvent::NeighborGapSplit { tick, .. }
            | SimEvent::LoadLied { tick, .. }
            | SimEvent::ProbeAgreed { tick, .. }
            | SimEvent::ProbeConflict { tick, .. }
            | SimEvent::Quarantined { tick, .. } => *tick,
        }
    }

    /// The worker that acted (or was acted upon).
    pub fn worker(&self) -> WorkerId {
        match self {
            SimEvent::SybilCreated { worker, .. }
            | SimEvent::SybilsRetired { worker, .. }
            | SimEvent::WorkerLeft { worker, .. }
            | SimEvent::WorkerCrashed { worker, .. }
            | SimEvent::WorkerJoined { worker, .. }
            | SimEvent::InvitationSent { worker, .. }
            | SimEvent::InvitationRefused { worker, .. }
            | SimEvent::InvitationHonored { worker, .. }
            | SimEvent::LoadQueried { worker, .. }
            | SimEvent::NeighborGapSplit { worker, .. }
            | SimEvent::LoadLied { worker, .. }
            | SimEvent::ProbeAgreed { worker, .. }
            | SimEvent::ProbeConflict { worker, .. }
            | SimEvent::Quarantined { worker, .. } => *worker,
        }
    }

    /// The `(decision name, magnitude)` pair of the event, without the
    /// position rendering of [`decision_fields`](Self::decision_fields)
    /// — the metrics plane increments counters by this name from the
    /// steady-state path, so it must not allocate.
    pub fn metric_fields(&self) -> (&'static str, u64) {
        match self {
            SimEvent::SybilCreated { acquired, .. } => ("sybil_created", *acquired),
            SimEvent::SybilsRetired { count, .. } => ("sybils_retired", *count as u64),
            SimEvent::WorkerLeft { .. } => ("worker_left", 0),
            SimEvent::WorkerCrashed { keys_lost, .. } => ("worker_crashed", *keys_lost),
            SimEvent::WorkerJoined { acquired, .. } => ("worker_joined", *acquired),
            SimEvent::InvitationSent { .. } => ("invitation_sent", 0),
            SimEvent::InvitationRefused { .. } => ("invitation_refused", 0),
            SimEvent::InvitationHonored { acquired, .. } => ("invitation_honored", *acquired),
            SimEvent::LoadQueried { load, .. } => ("load_queried", *load),
            SimEvent::NeighborGapSplit { .. } => ("neighbor_gap_split", 0),
            SimEvent::LoadLied { reported, .. } => ("lied", *reported),
            SimEvent::ProbeAgreed { estimate, .. } => ("probe_agree", *estimate),
            SimEvent::ProbeConflict { estimate, .. } => ("probe_conflict", *estimate),
            SimEvent::Quarantined { suspicion, .. } => ("quarantined", *suspicion),
        }
    }

    /// Flattens the event into the telemetry decision tuple
    /// `(name, worker, pos, value)` — stable lowercase names, hex ring
    /// positions — so both substrates emit identical `Decision`
    /// records for identical events.
    pub fn decision_fields(&self) -> (&'static str, u64, String, u64) {
        match self {
            SimEvent::SybilCreated {
                worker,
                pos,
                acquired,
                ..
            } => ("sybil_created", *worker as u64, pos.to_hex(), *acquired),
            SimEvent::SybilsRetired { worker, count, .. } => (
                "sybils_retired",
                *worker as u64,
                String::new(),
                *count as u64,
            ),
            SimEvent::WorkerLeft { worker, .. } => {
                ("worker_left", *worker as u64, String::new(), 0)
            }
            SimEvent::WorkerCrashed {
                worker, keys_lost, ..
            } => ("worker_crashed", *worker as u64, String::new(), *keys_lost),
            SimEvent::WorkerJoined {
                worker,
                pos,
                acquired,
                ..
            } => ("worker_joined", *worker as u64, pos.to_hex(), *acquired),
            SimEvent::InvitationSent { worker, .. } => {
                ("invitation_sent", *worker as u64, String::new(), 0)
            }
            SimEvent::InvitationRefused { worker, .. } => {
                ("invitation_refused", *worker as u64, String::new(), 0)
            }
            SimEvent::InvitationHonored {
                worker,
                helper,
                acquired,
                ..
            } => (
                "invitation_honored",
                *worker as u64,
                format!("w{helper}"),
                *acquired,
            ),
            SimEvent::LoadQueried {
                worker,
                neighbor,
                load,
                ..
            } => ("load_queried", *worker as u64, neighbor.to_hex(), *load),
            SimEvent::NeighborGapSplit { worker, pos, .. } => {
                ("neighbor_gap_split", *worker as u64, pos.to_hex(), 0)
            }
            SimEvent::LoadLied {
                worker,
                about,
                reported,
                ..
            } => ("lied", *worker as u64, about.to_hex(), *reported),
            SimEvent::ProbeAgreed {
                worker,
                target,
                estimate,
                ..
            } => ("probe_agree", *worker as u64, target.to_hex(), *estimate),
            SimEvent::ProbeConflict {
                worker,
                target,
                estimate,
                ..
            } => ("probe_conflict", *worker as u64, target.to_hex(), *estimate),
            SimEvent::Quarantined {
                worker,
                reporter,
                suspicion,
                ..
            } => ("quarantined", *worker as u64, reporter.to_hex(), *suspicion),
        }
    }
}

/// An append-only event log that is free when disabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EventLog {
    enabled: bool,
    events: Vec<SimEvent>,
}

impl EventLog {
    pub fn new(enabled: bool) -> EventLog {
        EventLog {
            enabled,
            events: Vec::new(),
        }
    }

    /// Records an event (no-op when disabled).
    #[inline]
    pub fn push(&mut self, event: SimEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one worker, in order.
    pub fn for_worker(&self, worker: WorkerId) -> impl Iterator<Item = &SimEvent> {
        self.events.iter().filter(move |e| e.worker() == worker)
    }

    /// Total tasks moved by Sybil acquisitions.
    pub fn tasks_acquired_by_sybils(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                SimEvent::SybilCreated { acquired, .. } => *acquired,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tick: u64, worker: WorkerId) -> SimEvent {
        SimEvent::SybilCreated {
            tick,
            worker,
            pos: Id::from(42u64),
            acquired: 3,
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::new(false);
        log.push(ev(1, 0));
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = EventLog::new(true);
        log.push(ev(1, 0));
        log.push(SimEvent::WorkerLeft { tick: 2, worker: 1 });
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[0].tick(), 1);
        assert_eq!(log.events()[1].tick(), 2);
        assert_eq!(log.events()[1].worker(), 1);
    }

    #[test]
    fn coverage_variants_carry_tick_and_worker() {
        let events = [
            SimEvent::LoadQueried {
                tick: 4,
                worker: 2,
                neighbor: Id::from(9u64),
                load: 31,
            },
            SimEvent::InvitationHonored {
                tick: 5,
                worker: 2,
                helper: 7,
                acquired: 12,
            },
            SimEvent::NeighborGapSplit {
                tick: 6,
                worker: 2,
                pos: Id::from(77u64),
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.tick(), 4 + i as u64);
            assert_eq!(e.worker(), 2);
        }
        let (name, worker, pos, value) = events[0].decision_fields();
        assert_eq!(name, "load_queried");
        assert_eq!(worker, 2);
        assert_eq!(pos, Id::from(9u64).to_hex());
        assert_eq!(value, 31);
        assert_eq!(
            events[1].decision_fields(),
            ("invitation_honored", 2, "w7".to_string(), 12)
        );
        assert_eq!(events[2].decision_fields().0, "neighbor_gap_split");
    }

    #[test]
    fn adversary_vocabulary_encodes_stably() {
        let events = [
            SimEvent::LoadLied {
                tick: 7,
                worker: 3,
                about: Id::from(5u64),
                reported: 2,
            },
            SimEvent::ProbeAgreed {
                tick: 8,
                worker: 3,
                target: Id::from(5u64),
                estimate: 40,
            },
            SimEvent::ProbeConflict {
                tick: 9,
                worker: 3,
                target: Id::from(5u64),
                estimate: 40,
            },
            SimEvent::Quarantined {
                tick: 10,
                worker: 3,
                reporter: Id::from(5u64),
                suspicion: 3,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.tick(), 7 + i as u64);
            assert_eq!(e.worker(), 3);
        }
        let hex = Id::from(5u64).to_hex();
        assert_eq!(events[0].decision_fields(), ("lied", 3, hex.clone(), 2));
        assert_eq!(
            events[1].decision_fields(),
            ("probe_agree", 3, hex.clone(), 40)
        );
        assert_eq!(
            events[2].decision_fields(),
            ("probe_conflict", 3, hex.clone(), 40)
        );
        assert_eq!(events[3].decision_fields(), ("quarantined", 3, hex, 3));
    }

    #[test]
    fn metric_fields_agree_with_decision_fields() {
        let events = [
            ev(1, 0),
            SimEvent::SybilsRetired {
                tick: 2,
                worker: 1,
                count: 4,
            },
            SimEvent::WorkerCrashed {
                tick: 3,
                worker: 2,
                keys_lost: 9,
            },
            SimEvent::InvitationHonored {
                tick: 4,
                worker: 2,
                helper: 7,
                acquired: 12,
            },
            SimEvent::LoadLied {
                tick: 5,
                worker: 3,
                about: Id::from(5u64),
                reported: 2,
            },
            SimEvent::Quarantined {
                tick: 6,
                worker: 3,
                reporter: Id::from(5u64),
                suspicion: 3,
            },
        ];
        for e in &events {
            let (name, _, _, value) = e.decision_fields();
            assert_eq!(e.metric_fields(), (name, value), "{e:?}");
        }
    }

    #[test]
    fn per_worker_filter_and_acquisition_sum() {
        let mut log = EventLog::new(true);
        log.push(ev(1, 0));
        log.push(ev(2, 1));
        log.push(ev(3, 0));
        assert_eq!(log.for_worker(0).count(), 2);
        assert_eq!(log.tasks_acquired_by_sybils(), 9);
    }
}
