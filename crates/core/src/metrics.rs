//! Run outputs: message tallies, workload snapshots, and the final
//! result record (§V-C "Outputs").

/// Message/bookkeeping counters attributable to load balancing.
///
/// The simulator does not charge these to runtime (neither does the
/// paper), but records them so the bandwidth ordering claims of §VI can
/// be checked: invitation (reactive) should spend fewer messages than
/// smart neighbor (which polls successors), which spends more than plain
/// neighbor (estimate only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimMessageStats {
    /// Sybil virtual nodes created (each costs one join's worth of
    /// lookup + key transfer).
    pub sybils_created: u64,
    /// Sybils dismissed ("has Sybils but no work → Sybils quit").
    pub sybils_retired: u64,
    /// Nodes that left via churn.
    pub churn_leaves: u64,
    /// Nodes that joined from the waiting pool.
    pub churn_joins: u64,
    /// Load queries sent to successors (smart neighbor injection).
    pub load_queries: u64,
    /// Help announcements broadcast to predecessors (invitation).
    pub invitations_sent: u64,
    /// Invitations that no predecessor could honor.
    pub invitations_refused: u64,
}

impl SimMessageStats {
    /// Total messages a real implementation would put on the wire for
    /// strategy decisions: queries + invitations + joins (a Sybil join ≈
    /// one lookup, counted as one message here; churn joins likewise).
    pub fn strategy_messages(&self) -> u64 {
        self.load_queries + self.invitations_sent + self.sybils_created + self.churn_joins
    }

    /// Column-wise sum for aggregating trials.
    pub fn merge(&mut self, o: &SimMessageStats) {
        self.sybils_created += o.sybils_created;
        self.sybils_retired += o.sybils_retired;
        self.churn_leaves += o.churn_leaves;
        self.churn_joins += o.churn_joins;
        self.load_queries += o.load_queries;
        self.invitations_sent += o.invitations_sent;
        self.invitations_refused += o.invitations_refused;
    }
}

/// Workload distribution captured at one tick: the per-worker totals of
/// every *active* worker (what the paper's Figure 4–14 histograms bin).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Snapshot {
    pub tick: u64,
    /// Tasks per active worker (unordered).
    pub loads: Vec<u64>,
    /// Number of active workers with zero tasks (idle).
    pub idle: usize,
    /// Virtual nodes in the ring at snapshot time.
    pub vnodes: usize,
}

impl Snapshot {
    pub fn from_loads(tick: u64, loads: Vec<u64>, vnodes: usize) -> Snapshot {
        let idle = loads.iter().filter(|&&l| l == 0).count();
        Snapshot {
            tick,
            loads,
            idle,
            vnodes,
        }
    }
}

/// Optional per-tick time series (enabled by
/// `SimConfig::series_interval`): the evolution of network shape and
/// balance quality over the run.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TickSeries {
    /// Tick numbers at which samples were taken.
    pub ticks: Vec<u64>,
    /// Active physical workers at each sample.
    pub active_workers: Vec<usize>,
    /// Virtual nodes (primaries + Sybils) at each sample.
    pub vnodes: Vec<usize>,
    /// Remaining tasks at each sample.
    pub remaining: Vec<u64>,
    /// Gini coefficient of the active-worker loads at each sample.
    pub gini: Vec<f64>,
    /// Idle active workers at each sample.
    pub idle: Vec<usize>,
}

impl TickSeries {
    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunResult {
    /// Ticks until the job finished (or the cap, when `!completed`).
    pub ticks: u64,
    /// The ideal runtime `ceil(tasks / Σ capacity)`.
    pub ideal_ticks: u64,
    /// `ticks / ideal_ticks` — the paper's headline metric.
    pub runtime_factor: f64,
    /// True when every task was consumed before the tick cap.
    pub completed: bool,
    /// Tasks consumed at each tick (index 0 = tick 1).
    pub work_per_tick: Vec<u64>,
    /// Workload snapshots captured at the configured ticks.
    pub snapshots: Vec<Snapshot>,
    /// Strategy message counters.
    pub messages: SimMessageStats,
    /// Peak number of virtual nodes observed.
    pub peak_vnodes: usize,
    /// Active workers at the end of the run.
    pub final_active_workers: usize,
    /// Optional per-tick series (when `series_interval` was set).
    #[cfg_attr(feature = "serde", serde(default))]
    pub series: TickSeries,
    /// Structured event log (when `record_events` was set).
    #[cfg_attr(feature = "serde", serde(default))]
    pub events: crate::trace::EventLog,
    /// Span-structured flight-recorder trace (when `record_trace` was
    /// set); empty and allocation-free otherwise.
    #[cfg_attr(feature = "serde", serde(default))]
    pub trace: autobal_telemetry::Trace,
    /// Streaming metrics samples (when `record_metrics` was set);
    /// empty otherwise. Integer-only and byte-deterministic.
    #[cfg_attr(feature = "serde", serde(default))]
    pub metrics: Vec<autobal_metrics::MetricsSample>,
}

impl RunResult {
    /// Mean tasks consumed per tick over the whole run.
    pub fn mean_work_per_tick(&self) -> f64 {
        if self.work_per_tick.is_empty() {
            return 0.0;
        }
        self.work_per_tick.iter().sum::<u64>() as f64 / self.work_per_tick.len() as f64
    }

    /// The snapshot captured at `tick`, if one was requested.
    pub fn snapshot_at(&self, tick: u64) -> Option<&Snapshot> {
        self.snapshots.iter().find(|s| s.tick == tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_counts_idle_workers() {
        let s = Snapshot::from_loads(5, vec![0, 3, 0, 7], 4);
        assert_eq!(s.idle, 2);
        assert_eq!(s.tick, 5);
        assert_eq!(s.vnodes, 4);
    }

    #[test]
    fn message_stats_merge_and_total() {
        let mut a = SimMessageStats {
            sybils_created: 2,
            load_queries: 10,
            ..Default::default()
        };
        let b = SimMessageStats {
            sybils_created: 1,
            invitations_sent: 4,
            churn_joins: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.sybils_created, 3);
        assert_eq!(a.strategy_messages(), 10 + 4 + 3 + 3);
    }

    #[test]
    fn run_result_helpers() {
        let r = RunResult {
            ticks: 10,
            ideal_ticks: 5,
            runtime_factor: 2.0,
            completed: true,
            work_per_tick: vec![5, 10, 15],
            snapshots: vec![Snapshot::from_loads(5, vec![1], 1)],
            messages: SimMessageStats::default(),
            peak_vnodes: 3,
            final_active_workers: 1,
            series: TickSeries::default(),
            events: crate::trace::EventLog::default(),
            trace: autobal_telemetry::Trace::default(),
            metrics: Vec::new(),
        };
        assert_eq!(r.mean_work_per_tick(), 10.0);
        assert!(r.snapshot_at(5).is_some());
        assert!(r.snapshot_at(6).is_none());
    }

    #[test]
    fn empty_work_history_mean_is_zero() {
        let r = RunResult {
            ticks: 0,
            ideal_ticks: 1,
            runtime_factor: 0.0,
            completed: true,
            work_per_tick: vec![],
            snapshots: vec![],
            messages: SimMessageStats::default(),
            peak_vnodes: 0,
            final_active_workers: 0,
            series: TickSeries::default(),
            events: crate::trace::EventLog::default(),
            trace: autobal_telemetry::Trace::default(),
            metrics: Vec::new(),
        };
        assert_eq!(r.mean_work_per_tick(), 0.0);
    }
}
