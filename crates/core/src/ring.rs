//! The simulation ring: an ordered map of virtual nodes with task sets.
//!
//! This is the fast substrate the tick simulator runs on (the
//! protocol-level Chord implementation lives in `autobal-chord`; see
//! DESIGN.md for why the simulator uses an oracle ring — identical
//! placement semantics, none of the per-message overhead, exactly like
//! the paper's own simulator).
//!
//! Every virtual node owns the clockwise arc `(predecessor, self]` and
//! holds the keys of the *remaining* tasks in that arc, sorted
//! ascending. Joins split the successor's task vector; departures merge
//! into the successor.

use crate::worker::WorkerId;
use autobal_id::{ring as arc, Id};
use std::collections::BTreeMap;
use std::ops::Bound;

/// One virtual node: a primary or a Sybil.
#[derive(Debug, Clone)]
pub struct VNode {
    /// The physical worker controlling this position.
    pub owner: WorkerId,
    /// Remaining task keys in this node's arc, in no particular order.
    /// Consumption removes a uniformly random element (see
    /// [`Ring::pop_task`]), so the remaining keys stay uniformly spread
    /// over the arc — the property Sybil splits rely on.
    pub tasks: Vec<Id>,
}

/// Errors from ring operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// A virtual node already sits at this exact id.
    Occupied(Id),
    /// No virtual node at this id.
    Unknown(Id),
    /// Removing the last virtual node would strand its tasks.
    LastVNode,
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Occupied(id) => write!(f, "position {id} already occupied"),
            RingError::Unknown(id) => write!(f, "no virtual node at {id}"),
            RingError::LastVNode => write!(f, "cannot remove the last virtual node"),
        }
    }
}

impl std::error::Error for RingError {}

/// How many retired task vectors the ring keeps around for reuse.
/// Splits and merges alternate under churn, so a handful of warm
/// buffers absorbs the steady state without hoarding memory.
pub(crate) const POOL_CAP: usize = 32;

/// Initial xorshift state for the pop generator. Shared with the
/// sharded engine so both start from the same stream.
pub(crate) const POP_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// The ring of virtual nodes.
#[derive(Debug, Clone)]
pub struct Ring {
    map: BTreeMap<Id, VNode>,
    total_tasks: u64,
    /// xorshift state for uniform task consumption (deterministic).
    pop_rng: u64,
    /// Reusable split buffer: holds the newcomer's keys during
    /// [`Ring::insert_vnode`] so steady-state splits never allocate.
    scratch: Vec<Id>,
    /// Retired task vectors from [`Ring::remove_vnode`], recycled as
    /// newcomer vectors on the next split.
    pool: Vec<Vec<Id>>,
}

impl Default for Ring {
    fn default() -> Ring {
        Ring::new()
    }
}

impl Ring {
    pub fn new() -> Ring {
        Ring {
            map: BTreeMap::new(),
            total_tasks: 0,
            pop_rng: POP_SEED,
            scratch: Vec::new(),
            pool: Vec::new(),
        }
    }

    /// Number of virtual nodes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total remaining tasks across the ring.
    pub fn total_tasks(&self) -> u64 {
        self.total_tasks
    }

    pub fn contains(&self, id: Id) -> bool {
        self.map.contains_key(&id)
    }

    pub fn vnode(&self, id: Id) -> Option<&VNode> {
        self.map.get(&id)
    }

    /// Remaining tasks at one virtual node.
    pub fn load(&self, id: Id) -> u64 {
        self.map.get(&id).map_or(0, |v| v.tasks.len() as u64)
    }

    /// Iterates `(id, vnode)` in ring (ascending id) order.
    pub fn iter(&self) -> impl Iterator<Item = (&Id, &VNode)> {
        self.map.iter()
    }

    /// The virtual node whose arc contains `key` (first id ≥ key,
    /// wrapping to the smallest id).
    pub fn owner_of_key(&self, key: Id) -> Option<Id> {
        self.map
            .range(key..)
            .next()
            .map(|(id, _)| *id)
            .or_else(|| self.map.keys().next().copied())
    }

    /// Clockwise neighbor of `id` (excluding itself; `id` itself when it
    /// is the only node). `id` need not be present.
    pub fn successor_of(&self, id: Id) -> Option<Id> {
        if self.map.is_empty() {
            return None;
        }
        self.map
            .range((Bound::Excluded(id), Bound::Unbounded))
            .next()
            .map(|(i, _)| *i)
            .or_else(|| self.map.keys().next().copied())
    }

    /// Counter-clockwise neighbor of `id` (excluding itself).
    pub fn predecessor_of(&self, id: Id) -> Option<Id> {
        if self.map.is_empty() {
            return None;
        }
        self.map
            .range(..id)
            .next_back()
            .map(|(i, _)| *i)
            .or_else(|| self.map.keys().next_back().copied())
    }

    /// Up to `k` distinct clockwise successors of `id`, nearest first,
    /// stopping early if the walk wraps back to `id`.
    pub fn successors(&self, id: Id, k: usize) -> Vec<Id> {
        let mut out = Vec::with_capacity(k);
        let mut cur = id;
        for _ in 0..k {
            match self.successor_of(cur) {
                Some(s) if s != id => {
                    out.push(s);
                    cur = s;
                }
                _ => break,
            }
        }
        out
    }

    /// Up to `k` distinct counter-clockwise predecessors, nearest first.
    pub fn predecessors(&self, id: Id, k: usize) -> Vec<Id> {
        let mut out = Vec::with_capacity(k);
        let mut cur = id;
        for _ in 0..k {
            match self.predecessor_of(cur) {
                Some(p) if p != id => {
                    out.push(p);
                    cur = p;
                }
                _ => break,
            }
        }
        out
    }

    /// Inserts a virtual node at `id` for `owner`, splitting the
    /// successor's task set: keys in `(old predecessor, id]` move to the
    /// newcomer. Returns how many tasks were acquired.
    pub fn insert_vnode(&mut self, id: Id, owner: WorkerId) -> Result<u64, RingError> {
        if self.map.contains_key(&id) {
            return Err(RingError::Occupied(id));
        }
        if self.map.is_empty() {
            self.map.insert(
                id,
                VNode {
                    owner,
                    tasks: Vec::new(),
                },
            );
            return Ok(0);
        }
        let succ_id = self.owner_of_key(id).expect("non-empty ring");
        let succ = self.map.get_mut(&succ_id).expect("successor exists");
        // Keys keeping with the successor are those in (id, succ_id];
        // everything else in its vector belongs to the newcomer.
        // `retain` is a stable in-place partition: keepers compact down
        // in order while the scratch buffer collects the newcomer's
        // keys, so both vectors end up element-for-element identical to
        // the two fresh vectors a `partition` would build.
        self.scratch.clear();
        let scratch = &mut self.scratch;
        succ.tasks.retain(|&k| {
            let keep = arc::in_arc(id, succ_id, k);
            if !keep {
                scratch.push(k);
            }
            keep
        });
        let acquired = self.scratch.len() as u64;
        let mut tasks = self.pool.pop().unwrap_or_default();
        tasks.extend_from_slice(&self.scratch);
        self.map.insert(id, VNode { owner, tasks });
        Ok(acquired)
    }

    /// Removes the virtual node at `id`, merging its remaining tasks
    /// into its successor. Returns `(owner, tasks_moved, successor)`.
    pub fn remove_vnode(&mut self, id: Id) -> Result<(WorkerId, u64, Id), RingError> {
        if !self.map.contains_key(&id) {
            return Err(RingError::Unknown(id));
        }
        if self.map.len() == 1 {
            let v = &self.map[&id];
            if v.tasks.is_empty() {
                let v = self.map.remove(&id).unwrap();
                self.recycle(v.tasks);
                return Ok((v.owner, 0, id));
            }
            return Err(RingError::LastVNode);
        }
        let succ_id = self.successor_of(id).expect("len >= 2");
        let v = self.map.remove(&id).unwrap();
        let moved = v.tasks.len() as u64;
        let succ = self.map.get_mut(&succ_id).unwrap();
        succ.tasks.extend_from_slice(&v.tasks);
        self.recycle(v.tasks);
        Ok((v.owner, moved, succ_id))
    }

    /// Parks a retired task vector for reuse by a later split.
    fn recycle(&mut self, mut tasks: Vec<Id>) {
        if self.pool.len() < POOL_CAP && tasks.capacity() > 0 {
            tasks.clear();
            self.pool.push(tasks);
        }
    }

    /// Distributes an arbitrary batch of task keys onto their owning
    /// virtual nodes (used for initial placement). Keys may arrive in
    /// any order.
    pub fn assign_tasks(&mut self, mut keys: Vec<Id>) {
        assert!(!self.map.is_empty(), "assign_tasks on empty ring");
        keys.sort_unstable();
        self.total_tasks += keys.len() as u64;
        // For consecutive vnode ids a < b, b owns integer range (a, b].
        // The smallest vnode also picks up the wrap: keys > last ∪ keys ≤ first.
        // One in-order mutable pass over the map replaces the old
        // collect-all-keys-into-a-Vec approach; `prev` carries the
        // window's left edge between iterations.
        let mut start = 0usize;
        let mut first = None;
        let mut prev = None;
        for (&b, node) in self.map.iter_mut() {
            let Some(a) = prev else {
                first = Some(b);
                prev = Some(b);
                continue;
            };
            // keys in (a, b]: advance start past ≤ a, then take ≤ b.
            let lo = keys[start..].partition_point(|&k| k <= a) + start;
            let hi = keys[lo..].partition_point(|&k| k <= b) + lo;
            extend_sorted(&mut node.tasks, &keys[lo..hi]);
            start = hi;
            prev = Some(b);
        }
        // Wrap chunk: keys ≤ first id and keys > last id go to first.
        let first = first.expect("non-empty ring");
        let last = prev.expect("non-empty ring");
        let head_end = keys.partition_point(|&k| k <= first);
        let tail_start = keys.partition_point(|&k| k <= last);
        let first_node = self.map.get_mut(&first).unwrap();
        // Tail (big keys) sort before head in ring order but after in
        // integer order; keep the vector integer-sorted.
        extend_sorted(&mut first_node.tasks, &keys[..head_end]);
        extend_sorted(&mut first_node.tasks, &keys[tail_start..]);
    }

    /// Consumes one uniformly random task from the virtual node.
    /// Returns `false` if the node is absent or idle.
    pub fn pop_task(&mut self, id: Id) -> bool {
        let Some(v) = self.map.get_mut(&id) else {
            return false;
        };
        let len = v.tasks.len();
        if len == 0 {
            return false;
        }
        let idx = next_pop_index(&mut self.pop_rng, len);
        v.tasks.swap_remove(idx);
        self.total_tasks -= 1;
        true
    }

    /// The ring-order median of a virtual node's remaining task keys:
    /// the key with half the node's tasks at or below it along the
    /// clockwise arc from its predecessor. `None` when the node is
    /// absent or idle. A Sybil planted *at* this key acquires half the
    /// victim's remaining work exactly — the §VII chosen-ID extension.
    pub fn median_task_key(&self, id: Id) -> Option<Id> {
        let v = self.map.get(&id)?;
        if v.tasks.is_empty() {
            return None;
        }
        let pred = self.predecessor_of(id).unwrap_or(id);
        let mut keys = v.tasks.clone();
        let mid = keys.len() / 2;
        keys.select_nth_unstable_by_key(mid, |k| k.wrapping_sub(pred));
        Some(keys[mid])
    }

    /// Per-owner total loads, for snapshot assertions.
    pub fn loads_by_owner(&self, workers: usize) -> Vec<u64> {
        let mut out = vec![0u64; workers];
        for v in self.map.values() {
            out[v.owner] += v.tasks.len() as u64;
        }
        out
    }

    /// Verifies internal invariants (accurate total, keys within their
    /// owner arcs). Test/debug helper; O(total tasks).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut counted = 0u64;
        for (&id, v) in &self.map {
            counted += v.tasks.len() as u64;
            let pred = self.predecessor_of(id).unwrap_or(id);
            for &k in &v.tasks {
                if pred != id && !arc::in_arc(pred, id, k) {
                    return Err(format!("key {k} at {id} outside arc ({pred}, {id}]"));
                }
            }
        }
        if counted != self.total_tasks {
            return Err(format!(
                "total_tasks {} but counted {}",
                self.total_tasks, counted
            ));
        }
        Ok(())
    }
}

/// One xorshift64 step of the pop generator. Split out from
/// [`next_pop_index`] because the state evolution is independent of the
/// vector lengths being popped — the sharded engine exploits this to
/// pre-generate a tick's whole state stream and pop in parallel.
#[inline]
pub(crate) fn advance_pop_state(state: u64) -> u64 {
    let mut x = state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// Maps an advanced state word to an index in `0..len` (the `*` finisher
/// of xorshift64*, reduced modulo the vector length).
#[inline]
pub(crate) fn pop_index(state: u64, len: usize) -> usize {
    debug_assert!(len > 0);
    (state.wrapping_mul(0x2545_F491_4F6C_DD1D) % len as u64) as usize
}

/// Next pseudo-random index in `0..len` (xorshift64*; cheap and
/// deterministic — good enough for picking which task to run next).
/// Free function over the bare state word so callers holding a mutable
/// borrow into the node map can still step the generator.
#[inline]
fn next_pop_index(state: &mut u64, len: usize) -> usize {
    *state = advance_pop_state(*state);
    pop_index(*state, len)
}

/// Merges two ascending-sorted vectors into one.
pub(crate) fn merge_sorted(a: &[Id], b: &[Id]) -> Vec<Id> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Appends a sorted chunk to a sorted vector, merging when necessary.
pub(crate) fn extend_sorted(dst: &mut Vec<Id>, chunk: &[Id]) {
    if chunk.is_empty() {
        return;
    }
    if dst.last().is_none_or(|&l| l <= chunk[0]) {
        dst.extend_from_slice(chunk);
    } else {
        *dst = merge_sorted(dst, chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u128) -> Id {
        Id::from(v)
    }

    fn ring_with(ids: &[u128]) -> Ring {
        let mut r = Ring::new();
        for (i, &v) in ids.iter().enumerate() {
            r.insert_vnode(id(v), i).unwrap();
        }
        r
    }

    #[test]
    fn empty_ring_basics() {
        let r = Ring::new();
        assert!(r.is_empty());
        assert_eq!(r.owner_of_key(id(5)), None);
        assert_eq!(r.successor_of(id(5)), None);
        assert_eq!(r.predecessor_of(id(5)), None);
    }

    #[test]
    fn owner_of_key_wraps() {
        let r = ring_with(&[100, 200, 300]);
        assert_eq!(r.owner_of_key(id(150)), Some(id(200)));
        assert_eq!(r.owner_of_key(id(200)), Some(id(200)));
        assert_eq!(r.owner_of_key(id(301)), Some(id(100)));
        assert_eq!(r.owner_of_key(id(50)), Some(id(100)));
    }

    #[test]
    fn successor_predecessor_wrap() {
        let r = ring_with(&[100, 200, 300]);
        assert_eq!(r.successor_of(id(300)), Some(id(100)));
        assert_eq!(r.predecessor_of(id(100)), Some(id(300)));
        assert_eq!(r.successor_of(id(250)), Some(id(300)));
        assert_eq!(r.predecessor_of(id(250)), Some(id(200)));
    }

    #[test]
    fn successors_list_stops_at_wrap() {
        let r = ring_with(&[100, 200, 300]);
        assert_eq!(r.successors(id(100), 5), vec![id(200), id(300)]);
        assert_eq!(r.predecessors(id(100), 5), vec![id(300), id(200)]);
        assert_eq!(r.successors(id(100), 1), vec![id(200)]);
    }

    #[test]
    fn assign_tasks_places_keys_in_arcs() {
        let mut r = ring_with(&[100, 200, 300]);
        r.assign_tasks(vec![id(150), id(250), id(50), id(350), id(200)]);
        // (100,200] -> 150, 200 ; (200,300] -> 250 ; wrap (300,100] -> 50, 350.
        assert_eq!(r.load(id(200)), 2);
        assert_eq!(r.load(id(300)), 1);
        assert_eq!(r.load(id(100)), 2);
        assert_eq!(r.total_tasks(), 5);
        r.check_invariants().unwrap();
    }

    #[test]
    fn insert_vnode_splits_successor() {
        let mut r = ring_with(&[100, 300]);
        r.assign_tasks(vec![id(150), id(250), id(280)]);
        assert_eq!(r.load(id(300)), 3);
        // New vnode at 260 takes keys in (100, 260] = {150, 250}.
        let got = r.insert_vnode(id(260), 9).unwrap();
        assert_eq!(got, 2);
        assert_eq!(r.load(id(260)), 2);
        assert_eq!(r.load(id(300)), 1);
        assert_eq!(r.vnode(id(260)).unwrap().owner, 9);
        r.check_invariants().unwrap();
    }

    #[test]
    fn insert_vnode_in_wrap_arc() {
        let mut r = ring_with(&[100, 300]);
        // Wrap arc (300, 100] holds 350 and 50.
        r.assign_tasks(vec![id(350), id(50)]);
        assert_eq!(r.load(id(100)), 2);
        // Split at 400: takes (300, 400] = {350}.
        let got = r.insert_vnode(id(400), 7).unwrap();
        assert_eq!(got, 1);
        assert_eq!(r.load(id(400)), 1);
        assert_eq!(r.load(id(100)), 1);
        r.check_invariants().unwrap();
    }

    #[test]
    fn insert_occupied_position_errors() {
        let mut r = ring_with(&[100]);
        assert_eq!(
            r.insert_vnode(id(100), 1),
            Err(RingError::Occupied(id(100)))
        );
    }

    #[test]
    fn remove_vnode_merges_into_successor() {
        let mut r = ring_with(&[100, 200, 300]);
        r.assign_tasks(vec![id(150), id(160), id(250)]);
        let (owner, moved, succ) = r.remove_vnode(id(200)).unwrap();
        assert_eq!(owner, 1);
        assert_eq!(moved, 2);
        assert_eq!(succ, id(300));
        assert_eq!(r.load(id(300)), 3);
        assert_eq!(r.total_tasks(), 3);
        r.check_invariants().unwrap();
    }

    #[test]
    fn remove_vnode_merge_across_wrap() {
        let mut r = ring_with(&[100, 300]);
        r.assign_tasks(vec![id(350), id(50), id(250)]);
        // Remove 300 (holds 250): merges into 100 across the wrap.
        let (_, moved, succ) = r.remove_vnode(id(300)).unwrap();
        assert_eq!(moved, 1);
        assert_eq!(succ, id(100));
        assert_eq!(r.load(id(100)), 3);
        r.check_invariants().unwrap();
    }

    #[test]
    fn remove_unknown_and_last() {
        let mut r = ring_with(&[100]);
        assert_eq!(r.remove_vnode(id(5)), Err(RingError::Unknown(id(5))));
        r.assign_tasks(vec![id(42)]);
        assert_eq!(r.remove_vnode(id(100)), Err(RingError::LastVNode));
        assert!(r.pop_task(id(100)));
        let (_, moved, _) = r.remove_vnode(id(100)).unwrap();
        assert_eq!(moved, 0);
        assert!(r.is_empty());
    }

    #[test]
    fn pop_task_consumes() {
        let mut r = ring_with(&[100]);
        r.assign_tasks(vec![id(1), id(2)]);
        assert!(r.pop_task(id(100)));
        assert_eq!(r.total_tasks(), 1);
        assert!(r.pop_task(id(100)));
        assert!(!r.pop_task(id(100)));
        assert!(!r.pop_task(id(999)));
        assert_eq!(r.total_tasks(), 0);
    }

    #[test]
    fn loads_by_owner_sums_vnodes() {
        let mut r = Ring::new();
        r.insert_vnode(id(100), 0).unwrap();
        r.insert_vnode(id(200), 1).unwrap();
        r.insert_vnode(id(300), 0).unwrap(); // second vnode for worker 0
        r.assign_tasks(vec![id(150), id(250), id(260), id(50)]);
        let loads = r.loads_by_owner(2);
        // worker0: vnode100 (wrap: 50) + vnode300 (250, 260) = 3.
        assert_eq!(loads, vec![3, 1]);
    }

    #[test]
    fn median_task_key_bisects_remaining_work() {
        let mut r = ring_with(&[1000]);
        r.assign_tasks((1..=9u128).map(|v| id(v * 100)).collect());
        let m = r.median_task_key(id(1000)).unwrap();
        // 9 keys 100..900; ring order from pred (=self, full ring) wraps,
        // but all keys < 1000 so ring order = integer order: median 500.
        assert_eq!(m, id(500));
        // Splitting there gives the newcomer 5 tasks (100..=500).
        let got = r.insert_vnode(m, 7).unwrap();
        assert_eq!(got, 5);
    }

    #[test]
    fn median_task_key_respects_ring_order_across_wrap() {
        let mut r = ring_with(&[100, 300]);
        // Wrap arc (300, 100]: keys 400, 500, 50 in ring order.
        r.assign_tasks(vec![id(400), id(500), id(50)]);
        let m = r.median_task_key(id(100)).unwrap();
        assert_eq!(m, id(500), "ring-order median, not integer median");
    }

    #[test]
    fn median_task_key_edge_cases() {
        let mut r = ring_with(&[100]);
        assert_eq!(r.median_task_key(id(100)), None, "idle node");
        assert_eq!(r.median_task_key(id(999)), None, "absent node");
        r.assign_tasks(vec![id(42)]);
        assert_eq!(r.median_task_key(id(100)), Some(id(42)));
    }

    #[test]
    fn merge_sorted_is_correct() {
        let a = vec![id(1), id(5), id(9)];
        let b = vec![id(2), id(5), id(10)];
        let m = merge_sorted(&a, &b);
        assert_eq!(m, vec![id(1), id(2), id(5), id(5), id(9), id(10)]);
        assert_eq!(merge_sorted(&[], &a), a);
        assert_eq!(merge_sorted(&a, &[]), a);
    }

    #[test]
    fn insert_split_respects_consumed_state() {
        // After consumption removes random keys, a later split still
        // moves exactly the remaining keys of the new arc.
        let mut r = ring_with(&[1000]);
        r.assign_tasks((1..=10u128).map(|v| id(v * 10)).collect());
        for _ in 0..3 {
            assert!(r.pop_task(id(1000)));
        }
        let remaining_low = r
            .vnode(id(1000))
            .unwrap()
            .tasks
            .iter()
            .filter(|&&k| k <= id(45))
            .count() as u64;
        let got = r.insert_vnode(id(45), 5).unwrap();
        assert_eq!(got, remaining_low);
        assert_eq!(r.load(id(45)) + r.load(id(1000)), 7);
        r.check_invariants().unwrap();
    }

    #[test]
    fn pop_task_is_roughly_uniform_over_the_arc() {
        // Consume half the tasks of one big arc; the survivors should
        // not be concentrated at either end.
        let mut r = ring_with(&[1_000_000]);
        r.assign_tasks((1..=1000u128).map(|v| id(v * 100)).collect());
        for _ in 0..500 {
            assert!(r.pop_task(id(1_000_000)));
        }
        let survivors = &r.vnode(id(1_000_000)).unwrap().tasks;
        let low = survivors.iter().filter(|&&k| k <= id(50_000)).count();
        // Expect ≈ 250 below the midpoint; fail only on gross bias.
        assert!((150..=350).contains(&low), "low-half survivors: {low}");
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn ring_error_display() {
        let id = Id::from(5u64);
        assert!(RingError::Occupied(id).to_string().contains("occupied"));
        assert!(RingError::Unknown(id)
            .to_string()
            .contains("no virtual node"));
        assert!(RingError::LastVNode.to_string().contains("last"));
    }

    #[test]
    fn ring_errors_are_std_errors() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RingError::LastVNode);
    }

    #[test]
    fn default_ring_is_empty() {
        let r = Ring::default();
        assert!(r.is_empty());
        assert_eq!(r.total_tasks(), 0);
    }
}
