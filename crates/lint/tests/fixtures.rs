//! The fixture corpus for the analyzer.
//!
//! Every file under `tests/fixtures/` is a plain-text Rust source (never
//! compiled) whose first line declares the virtual workspace path the
//! scanner should believe it lives at:
//!
//! ```text
//! //@ path: crates/chord/src/network.rs
//! ```
//!
//! Each line expected to produce a finding carries a `//~ ERROR <rule>`
//! marker. The harness runs [`autobal_lint::scan_source`] on every
//! fixture and demands an exact match between markers and findings —
//! both directions: a missed finding and a spurious one both fail.

use autobal_lint::{scan_source, scan_workspace, Rule, SCAN_ROOTS};
use std::path::{Path, PathBuf};

const MARKER: &str = "//~ ERROR ";

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Parses the `//~ ERROR <rule>` markers of a fixture into the expected
/// `(line, rule)` set, sorted the way `scan_source` sorts findings.
fn expected_markers(src: &str) -> Vec<(usize, Rule)> {
    let mut expected = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let mut search = 0;
        while let Some(p) = line[search..].find(MARKER) {
            let at = search + p + MARKER.len();
            let id: String = line[at..]
                .chars()
                .take_while(|c| c.is_ascii_lowercase() || *c == '-')
                .collect();
            let rule = match id.as_str() {
                "unused-allow" => Rule::UnusedAllow,
                "malformed-allow" => Rule::MalformedAllow,
                other => Rule::from_id(other)
                    .unwrap_or_else(|| panic!("fixture marker names unknown rule `{other}`")),
            };
            expected.push((idx + 1, rule));
            search = at;
        }
    }
    expected.sort();
    expected
}

fn fixture_sources() -> Vec<(String, String)> {
    let dir = fixtures_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            let src = std::fs::read_to_string(&p).expect("fixture readable");
            (name, src)
        })
        .collect()
}

/// Every fixture's findings must match its markers exactly, file:line
/// and rule included.
#[test]
fn corpus_findings_match_markers() {
    let fixtures = fixture_sources();
    assert!(fixtures.len() >= 6, "corpus went missing");
    for (name, src) in &fixtures {
        let first = src.lines().next().unwrap_or("");
        let rel = first
            .strip_prefix("//@ path: ")
            .unwrap_or_else(|| panic!("fixture {name} missing `//@ path:` header"))
            .trim();
        let expected = expected_markers(src);
        let got: Vec<(usize, Rule)> = scan_source(rel, src)
            .iter()
            .map(|f| (f.line, f.rule))
            .collect();
        assert_eq!(
            got, expected,
            "fixture {name} (as {rel}): findings != markers"
        );
    }
}

/// The corpus exercises every rule family, including both
/// annotation-audit meta-diagnostics.
#[test]
fn corpus_covers_every_rule() {
    let mut seen = Vec::new();
    for (_, src) in fixture_sources() {
        seen.extend(expected_markers(&src).into_iter().map(|(_, r)| r));
    }
    for rule in [
        Rule::Determinism,
        Rule::PanicSafety,
        Rule::StrategyLocality,
        Rule::OutputDiscipline,
        Rule::UnusedAllow,
        Rule::MalformedAllow,
    ] {
        assert!(seen.contains(&rule), "no fixture exercises {}", rule.id());
    }
}

/// A standalone annotation guards exactly one line; a second identical
/// violation right after it must still be reported.
#[test]
fn allow_suppresses_exactly_one_finding() {
    let src = "// autobal-lint: allow(determinism, \"guards one line\")\n\
               use std::collections::HashMap;\n\
               use std::collections::HashMap as Second;\n";
    let got = scan_source("crates/core/src/x.rs", src);
    assert_eq!(got.len(), 1, "exactly one finding: {got:?}");
    assert_eq!((got[0].line, got[0].rule), (3, Rule::Determinism));
}

/// The shipped tree itself must be clean — the analyzer's findings are
/// fixed or annotated, never outstanding.
#[test]
fn real_workspace_is_clean() {
    let root = workspace_root();
    for sub in SCAN_ROOTS {
        assert!(
            root.join(sub).is_dir() || *sub == "crates/bench/src",
            "scan root {sub} missing below {}",
            root.display()
        );
    }
    let findings = scan_workspace(&root).expect("workspace scan succeeds");
    let listing: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    assert!(
        findings.is_empty(),
        "the workspace must lint clean:\n{}",
        listing.join("\n")
    );
}
