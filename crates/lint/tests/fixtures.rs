//! The fixture corpus for the analyzer.
//!
//! Every file under `tests/fixtures/` is a plain-text Rust source (never
//! compiled) whose first line declares the virtual workspace path the
//! scanner should believe it lives at:
//!
//! ```text
//! //@ path: crates/chord/src/network.rs
//! ```
//!
//! Each line expected to produce a finding carries a `//~ ERROR <rule>`
//! marker. The harness runs [`autobal_lint::scan_source`] on every
//! fixture and demands an exact match between markers and findings —
//! both directions: a missed finding and a spurious one both fail.

use autobal_lint::{rules_for, scan_files, scan_source, Rule};
use std::path::{Path, PathBuf};

const MARKER: &str = "//~ ERROR ";

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Parses the `//~ ERROR <rule>` markers of a fixture into the expected
/// `(line, rule)` set, sorted the way `scan_source` sorts findings.
fn expected_markers(src: &str) -> Vec<(usize, Rule)> {
    let mut expected = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let mut search = 0;
        while let Some(p) = line[search..].find(MARKER) {
            let at = search + p + MARKER.len();
            let id: String = line[at..]
                .chars()
                .take_while(|c| c.is_ascii_lowercase() || *c == '-')
                .collect();
            let rule = match id.as_str() {
                "unused-allow" => Rule::UnusedAllow,
                "malformed-allow" => Rule::MalformedAllow,
                other => Rule::from_id(other)
                    .unwrap_or_else(|| panic!("fixture marker names unknown rule `{other}`")),
            };
            expected.push((idx + 1, rule));
            search = at;
        }
    }
    expected.sort();
    expected
}

fn fixture_sources() -> Vec<(String, String)> {
    let dir = fixtures_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            let src = std::fs::read_to_string(&p).expect("fixture readable");
            (name, src)
        })
        .collect()
}

/// Every fixture's findings must match its markers exactly, file:line
/// and rule included.
#[test]
fn corpus_findings_match_markers() {
    let fixtures = fixture_sources();
    assert!(fixtures.len() >= 6, "corpus went missing");
    for (name, src) in &fixtures {
        let first = src.lines().next().unwrap_or("");
        let rel = first
            .strip_prefix("//@ path: ")
            .unwrap_or_else(|| panic!("fixture {name} missing `//@ path:` header"))
            .trim();
        let expected = expected_markers(src);
        let got: Vec<(usize, Rule)> = scan_source(rel, src)
            .iter()
            .map(|f| (f.line, f.rule))
            .collect();
        assert_eq!(
            got, expected,
            "fixture {name} (as {rel}): findings != markers"
        );
    }
}

/// Subdirectories of `tests/fixtures/` are fixture *groups*: one
/// virtual workspace per directory, scanned together so cross-file
/// rules (layering edges, cross-crate fallible calls, telemetry
/// coverage) see all members at once. `.rs` members declare their
/// virtual path as usual; a `.jsonl` member plays the workspace
/// resource of the same name under `tests/data/`.
fn fixture_groups() -> Vec<(String, Vec<(String, String)>)> {
    let dir = fixtures_dir();
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    let mut groups = Vec::new();
    for d in dirs {
        let name = d
            .file_name()
            .expect("dir name")
            .to_string_lossy()
            .into_owned();
        let mut members: Vec<PathBuf> = std::fs::read_dir(&d)
            .expect("group directory readable")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        let mut inputs = Vec::new();
        for m in members {
            let src = std::fs::read_to_string(&m).expect("group member readable");
            match m.extension().and_then(|e| e.to_str()) {
                Some("rs") => {
                    let first = src.lines().next().unwrap_or("");
                    let rel = first
                        .strip_prefix("//@ path: ")
                        .unwrap_or_else(|| {
                            panic!("group member {} missing `//@ path:` header", m.display())
                        })
                        .trim()
                        .to_string();
                    inputs.push((rel, src));
                }
                Some("jsonl") => {
                    // A `.jsonl` member plays the workspace resource of
                    // the same name (golden_schema, golden_metrics, …).
                    let file = m
                        .file_name()
                        .expect("file name")
                        .to_string_lossy()
                        .into_owned();
                    inputs.push((format!("tests/data/{file}"), src));
                }
                _ => panic!("unexpected group member {}", m.display()),
            }
        }
        groups.push((name, inputs));
    }
    groups
}

/// Every group's findings must match the union of its members'
/// markers, file attribution included.
#[test]
fn group_corpora_match_markers() {
    let groups = fixture_groups();
    assert!(groups.len() >= 2, "group corpus went missing");
    for (name, inputs) in &groups {
        let mut expected: Vec<(String, usize, Rule)> = Vec::new();
        for (rel, src) in inputs {
            if rel.ends_with(".jsonl") {
                continue;
            }
            expected.extend(
                expected_markers(src)
                    .into_iter()
                    .map(|(line, rule)| (rel.clone(), line, rule)),
            );
        }
        expected.sort();
        let got: Vec<(String, usize, Rule)> = scan_files(inputs)
            .iter()
            .map(|f| (f.file.display().to_string(), f.line, f.rule))
            .collect();
        assert_eq!(got, expected, "group {name}: findings != markers");
    }
}

/// The corpus exercises every one of the ten diagnostics — all eight
/// rule families plus both annotation-audit meta-diagnostics.
#[test]
fn corpus_covers_every_rule() {
    let mut seen = Vec::new();
    for (_, src) in fixture_sources() {
        seen.extend(expected_markers(&src).into_iter().map(|(_, r)| r));
    }
    for (_, inputs) in fixture_groups() {
        for (_, src) in inputs {
            seen.extend(expected_markers(&src).into_iter().map(|(_, r)| r));
        }
    }
    for rule in [
        Rule::Determinism,
        Rule::PanicSafety,
        Rule::StrategyLocality,
        Rule::OutputDiscipline,
        Rule::Layering,
        Rule::ErrorPath,
        Rule::FloatOrder,
        Rule::TelemetryVocab,
        Rule::UnusedAllow,
        Rule::MalformedAllow,
    ] {
        assert!(seen.contains(&rule), "no fixture exercises {}", rule.id());
    }
}

/// A standalone annotation guards exactly one line; a second identical
/// violation right after it must still be reported.
#[test]
fn allow_suppresses_exactly_one_finding() {
    let src = "// autobal-lint: allow(determinism, \"guards one line\")\n\
               use std::collections::HashMap;\n\
               use std::collections::HashMap as Second;\n";
    let got = scan_source("crates/core/src/x.rs", src);
    assert_eq!(got.len(), 1, "exactly one finding: {got:?}");
    assert_eq!((got[0].line, got[0].rule), (3, Rule::Determinism));
}

/// The analyzer holds itself to its own panic-safety and
/// output-discipline bars: its library sources, scanned as if they
/// lived on the delivery path, produce no findings from either family.
#[test]
fn analyzer_lints_itself() {
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    for name in ["lexer.rs", "parser.rs", "model.rs", "rules.rs", "lib.rs"] {
        let src = std::fs::read_to_string(src_dir.join(name)).expect("lint source readable");
        let offenders: Vec<String> = scan_source("crates/chord/src/eventnet.rs", &src)
            .iter()
            .filter(|f| matches!(f.rule, Rule::PanicSafety | Rule::OutputDiscipline))
            .map(|f| format!("{name}:{}: [{}] {}", f.line, f.rule.id(), f.message))
            .collect();
        assert!(
            offenders.is_empty(),
            "the analyzer must pass its own rules:\n{}",
            offenders.join("\n")
        );
    }
}

/// Scope sanity: the per-file families land exactly where the charter
/// says they do.
#[test]
fn scopes_are_pinned() {
    assert!(rules_for("crates/core/src/sim.rs").contains(&Rule::Determinism));
    assert!(rules_for("crates/chord/src/network.rs").contains(&Rule::ErrorPath));
    assert!(rules_for("src/protocol_sim.rs").contains(&Rule::ErrorPath));
    assert!(!rules_for("crates/stats/src/ci.rs").contains(&Rule::ErrorPath));
    assert!(rules_for("crates/stats/src/ci.rs").contains(&Rule::FloatOrder));
    assert!(rules_for("crates/core/src/strategy/smart.rs").contains(&Rule::StrategyLocality));
    assert!(!rules_for("crates/core/src/strategy/mod.rs").contains(&Rule::StrategyLocality));
    assert!(rules_for("crates/experiments/src/main.rs").contains(&Rule::Determinism));
    assert!(!rules_for("crates/experiments/src/main.rs").contains(&Rule::OutputDiscipline));
}
