//! The shipped tree itself must be clean — the analyzer's findings
//! are fixed or annotated, never outstanding. Kept apart from the
//! fixture corpus so CI can run the corpus and the clean-tree gate as
//! separate steps with separate failure messages.

use autobal_lint::{scan_workspace, SCAN_ROOTS};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn real_workspace_is_clean() {
    let root = workspace_root();
    for sub in SCAN_ROOTS {
        assert!(
            root.join(sub).is_dir() || *sub == "crates/bench/src",
            "scan root {sub} missing below {}",
            root.display()
        );
    }
    let findings = scan_workspace(&root).expect("workspace scan succeeds");
    let listing: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    assert!(
        findings.is_empty(),
        "the workspace must lint clean:\n{}",
        listing.join("\n")
    );
}
