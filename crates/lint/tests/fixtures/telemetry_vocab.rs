//@ path: crates/core/src/trace_fixture.rs
// Telemetry-vocabulary fixture: an event variant nobody emits, and a
// vocabulary with no golden fixture to pin its wire names.
pub enum SimEvent { //~ ERROR telemetry-vocab
    Emitted { worker: u64 },
    Ghost { worker: u64 }, //~ ERROR telemetry-vocab
}

impl SimEvent {
    pub fn decision_fields(&self) -> &'static str {
        match self {
            SimEvent::Emitted { .. } => "emitted",
            SimEvent::Ghost { .. } => "ghost",
        }
    }
}

pub fn emit() -> SimEvent {
    SimEvent::Emitted { worker: 0 }
}
