//@ path: crates/metrics/src/hub_fixture.rs
// Emit sites for the group: by const reference for GOOD and
// UNREGISTERED, by literal name for the uncovered and badly-cased
// metrics. UNEMITTED is deliberately absent.
use crate::names::{GOOD, UNREGISTERED};

pub fn emit() -> [&'static str; 4] {
    [GOOD, UNREGISTERED, "uncovered_metric", "BadCase"]
}
