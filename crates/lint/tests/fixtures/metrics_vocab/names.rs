//@ path: crates/metrics/src/names.rs
// Group fixture for the metric-name vocabulary: GOOD satisfies every
// obligation; each of the others breaks exactly one — missing from the
// registry table, missing from the golden metrics fixture, not
// snake_case, or never emitted.
pub const GOOD: &str = "good_metric";
pub const UNREGISTERED: &str = "unregistered_metric"; //~ ERROR telemetry-vocab
pub const UNCOVERED: &str = "uncovered_metric"; //~ ERROR telemetry-vocab
pub const BAD_CASE: &str = "BadCase"; //~ ERROR telemetry-vocab
pub const UNEMITTED: &str = "unemitted_metric"; //~ ERROR telemetry-vocab

pub const ALL: &[(&str, u8, &str)] = &[
    (GOOD, 0, "help"),
    (UNCOVERED, 0, "help"),
    (BAD_CASE, 0, "help"),
    (UNEMITTED, 0, "help"),
];
