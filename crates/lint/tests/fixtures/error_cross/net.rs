//@ path: crates/chord/src/network.rs
// The fallible surface the group's adversary file discards.
pub enum NetworkError {
    Jammed,
}

pub fn deliver() -> Result<(), NetworkError> {
    Ok(())
}
