//@ path: crates/chord/src/adversary.rs
// Cross-file discard: `deliver` is declared fallible in network.rs,
// so the discard is reported naming its callee.
use crate::network::deliver;

pub fn strike() {
    let _ = deliver(); //~ ERROR error-path
}
