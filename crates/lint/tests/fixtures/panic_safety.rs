//@ path: crates/chord/src/network.rs
// Panic-safety fixture for the message-delivery paths. The virtual
// path places it under rule P (and D, so no unordered containers here).
pub fn panicky(nodes: &std::collections::BTreeMap<u64, u64>, ids: &[u64], i: usize) -> u64 {
    let a = nodes.get(&1).unwrap(); //~ ERROR panic-safety
    let b = nodes.get(&2).expect("must exist"); //~ ERROR panic-safety
    if ids.is_empty() {
        panic!("no nodes"); //~ ERROR panic-safety
    }
    if i > ids.len() {
        unreachable!(); //~ ERROR panic-safety
    }
    let c = ids[i]; //~ ERROR panic-safety
    let d = nodes[&c]; //~ ERROR panic-safety
    a + b + c + d
}

pub fn graceful(nodes: &std::collections::BTreeMap<u64, u64>, ids: &[u64]) -> u64 {
    // None of these constructs are indexing or panicking calls.
    let a = nodes.get(&1).copied().unwrap_or(0);
    let b = nodes.get(&2).copied().unwrap_or_else(|| 7);
    let v = vec![a, b];
    let arr: [u64; 2] = [a, b];
    let mut sum = 0;
    for x in [1u64, 2, 3] {
        sum += x;
    }
    sum + v.len() as u64 + arr.len() as u64 + ids.first().copied().unwrap_or(0)
}

#[derive(Debug, Clone)]
pub struct Attributed {
    pub field: u64,
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let v = vec![1, 2, 3];
        assert_eq!(v[0], 1);
        let x: Option<u32> = Some(5);
        assert_eq!(x.unwrap(), 5);
    }
}
