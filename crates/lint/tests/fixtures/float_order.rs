//@ path: crates/stats/src/order_fixture.rs
// Float-order fixture: reductions whose shape the rayon scheduler
// picks, and comparators built on a partial order.
use rayon::prelude::*;

pub fn unstable_sum(xs: &[f64]) -> f64 {
    xs.par_iter().sum() //~ ERROR float-order
}

pub fn unstable_reduce(xs: Vec<f64>) -> f64 {
    xs.into_par_iter().reduce(|| 0.0, |a, b| a + b) //~ ERROR float-order
}

pub fn sloppy_sort(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite")); //~ ERROR float-order
}

// Serial reduction over a collected buffer and a total ordering stay
// silent: the parallel stage only maps, the reduction is sequential.
pub fn stable_sum(xs: &[f64]) -> f64 {
    let mut parts: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();
    parts.sort_by(|a, b| a.total_cmp(b));
    parts.iter().sum()
}
