//@ path: crates/chord/src/eventnet.rs
// Clean fixture: deterministic containers, fallible access, exempt test
// code. The harness asserts zero findings.
use std::collections::BTreeMap;

pub fn graceful(nodes: &BTreeMap<u64, u64>, ids: &[u64]) -> Option<u64> {
    let first = ids.first().copied()?;
    let Some(v) = nodes.get(&first) else {
        return None;
    };
    Some(*v + ids.get(1).copied().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn exempt_from_every_rule() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m[&1], 2);
        let v = vec![1, 2];
        assert_eq!(v[0], 1);
        let x: Option<u64> = Some(3);
        assert_eq!(x.unwrap(), 3);
    }
}
