//@ path: crates/core/src/fixture.rs
// Determinism-rule fixture: every marked line must be flagged, every
// unmarked line must stay silent. Not compiled — consumed by the
// fixtures harness as text.
use std::collections::HashMap; //~ ERROR determinism
use std::collections::HashSet; //~ ERROR determinism

pub fn entropy_sources() -> u64 {
    let mut rng = rand::thread_rng(); //~ ERROR determinism
    let other = ChaCha8Rng::from_entropy(); //~ ERROR determinism
    let _ = std::time::SystemTime::now(); //~ ERROR determinism
    let t0 = std::time::Instant::now(); //~ ERROR determinism
    rng.gen::<u64>() ^ other.gen::<u64>() ^ t0.elapsed().as_nanos() as u64
}

pub fn negatives() -> usize {
    // A comment mentioning HashMap must not fire.
    let my_thread_rng_count = 1; // identifier containing the word
    let s = "HashMap inside a string literal";
    let raw = r#"HashSet inside a raw string"#;
    my_thread_rng_count + s.len() + raw.len()
}

#[cfg(test)]
mod tests {
    // Test code is exempt: unordered containers are fine here.
    use std::collections::HashMap;

    #[test]
    fn exempt() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
    }
}
