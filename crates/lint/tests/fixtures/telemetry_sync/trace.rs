//@ path: crates/core/src/trace_fixture.rs
// Group fixture: the golden schema covers "done" but not "skipped".
pub enum SimEvent {
    Done { worker: u64 },
    Skipped { worker: u64 },
}

impl SimEvent {
    pub fn decision_fields(&self) -> &'static str {
        match self {
            SimEvent::Done { .. } => "done",
            SimEvent::Skipped { .. } => "skipped", //~ ERROR telemetry-vocab
        }
    }
}
