//@ path: crates/telemetry/src/record_fixture.rs
// A status vocabulary: Delivered is emitted and golden-covered, Lost
// is neither — one finding per missing obligation.
pub enum MessageStatus {
    Delivered,
    Lost, //~ ERROR telemetry-vocab //~ ERROR telemetry-vocab
}
