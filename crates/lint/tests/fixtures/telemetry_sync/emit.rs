//@ path: crates/core/src/emit_fixture.rs
// Emit sites for the group: both events and the Delivered status.
use crate::trace_fixture::SimEvent;

pub fn emit_done() -> SimEvent {
    SimEvent::Done { worker: 1 }
}

pub fn emit_skipped() -> SimEvent {
    SimEvent::Skipped { worker: 2 }
}

pub fn delivered() -> MessageStatus {
    MessageStatus::Delivered
}
