//@ path: crates/core/src/fake.rs
// Output-discipline fixture: library code writing to the console in
// every forbidden way; writes into buffers stay silent.

pub fn chatty(load: u64) {
    println!("load is {load}"); //~ ERROR output-discipline
    eprintln!("warning: {load}"); //~ ERROR output-discipline
    print!("{load} "); //~ ERROR output-discipline
    eprint!("{load} "); //~ ERROR output-discipline
}

// An audited endpoint carries an explicit exemption.
pub fn audited(line: &str) {
    // autobal-lint: allow(output-discipline, "fixture: audited output endpoint")
    println!("{line}");
}

// An exemption with nothing to suppress is itself reported.
// autobal-lint: allow(output-discipline, "fixture: nothing to suppress") //~ ERROR unused-allow
pub fn quiet(out: &mut String, load: u64) {
    use std::fmt::Write;
    let _ = writeln!(out, "{load}");
}
