//@ path: crates/core/src/strategy/fixture.rs
// Strategy-locality fixture: a strategy module trying to escape the
// LocalView/Actions surface in every forbidden direction.
use autobal_chord::Network; //~ ERROR strategy-locality //~ ERROR layering
use crate::sim::Sim; //~ ERROR strategy-locality

pub fn sneaky() {
    let owner = crate::ring::owner_of(42); //~ ERROR strategy-locality
    crate::trace::emit("cheating"); //~ ERROR strategy-locality
    crate::metrics::bump(owner); //~ ERROR strategy-locality
}

pub fn omniscient(view: &mut dyn OracleView) {} //~ ERROR strategy-locality

// The sanctioned imports stay silent.
use super::{Actions, LocalView, Strategy, StrategyScope};
use autobal_id::{ring, Id};

pub fn local_only(view: &dyn LocalView, actions: &mut dyn Actions) {
    let _ = (view.load(), actions);
    let _ = ring::distance(Id::ZERO, Id::MAX);
}
