//@ path: crates/viz/src/fixture.rs
// Out-of-scope fixture: of the per-file families only float-order
// reaches the viz crate, and nothing here trips it.
use std::collections::HashMap;

pub fn renderer(cells: &HashMap<u64, f64>, order: &[u64]) -> f64 {
    let first = order[0];
    cells.get(&first).copied().unwrap()
}
