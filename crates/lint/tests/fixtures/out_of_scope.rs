//@ path: crates/viz/src/fixture.rs
// Out-of-scope fixture: the viz crate carries none of the three rule
// families, so nothing here may be flagged.
use std::collections::HashMap;

pub fn renderer(cells: &HashMap<u64, f64>, order: &[u64]) -> f64 {
    let first = order[0];
    cells.get(&first).copied().unwrap()
}
