//@ path: crates/chord/src/network.rs
// Annotation-audit fixture: allows suppress exactly one finding each,
// unused and malformed annotations are themselves reported.

// Same-line allow: suppressed, no finding.
pub fn same_line(x: Option<u64>) -> u64 {
    x.unwrap() // autobal-lint: allow(panic-safety, "fixture: same-line suppression")
}

// Standalone allow guards only the next line: the first call is
// suppressed, the identical one after it is still flagged.
pub fn standalone(x: Option<u64>, y: Option<u64>) -> u64 {
    // autobal-lint: allow(panic-safety, "fixture: guards exactly one line")
    let a = x.unwrap();
    let b = y.unwrap(); //~ ERROR panic-safety
    a + b
}

// An allow that suppresses nothing is reported where it stands.
// autobal-lint: allow(panic-safety, "fixture: nothing to suppress") //~ ERROR unused-allow
pub fn clean_line() -> u64 {
    7
}

// An allow for the wrong family suppresses nothing: the original
// finding survives and the annotation is reported as unused.
pub fn wrong_family(x: Option<u64>) -> u64 {
    x.unwrap() // autobal-lint: allow(determinism, "fixture: wrong rule family") //~ ERROR panic-safety //~ ERROR unused-allow
}

// Malformed annotations: missing reason, unknown rule, empty reason.
// autobal-lint: allow(panic-safety) //~ ERROR malformed-allow
// autobal-lint: allow(no-such-rule, "reason") //~ ERROR malformed-allow
// autobal-lint: allow(panic-safety, "") //~ ERROR malformed-allow
pub fn tail() -> u64 {
    0
}

// Test code is exempt from every rule, so an allow inside it is dead
// weight and reported as unused; a malformed marker there is ignored
// (test scaffolding may mention the syntax without being audited).
#[cfg(test)]
mod tests {
    // autobal-lint: allow(panic-safety, "fixture: exempt region") //~ ERROR unused-allow
    // autobal-lint: allow(panic-safety)
    #[test]
    fn exercised() {
        let x: Option<u64> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
