//@ path: crates/stats/src/lib_fixture.rs
// Layering fixture: the stats layer may lean only on the shared id
// arithmetic; every other first-party import is an upward edge.
use autobal_id::Id;
use autobal_core::sim::Sim; //~ ERROR layering
use autobal_telemetry::sink::Trace; //~ ERROR layering

pub fn sneaky(seed: u64) -> Id {
    autobal_chord::eventnet::seeded_id(seed) //~ ERROR layering
}

// An audited exception is possible but must carry its reason.
// autobal-lint: allow(layering, "fixture: demonstrates an audited edge")
use autobal_workload::plan::Plan;

#[cfg(test)]
mod tests {
    // Test code may reach anywhere; the mask exempts it.
    use autobal_core::sim::Sim as TestSim;
}
