//@ path: crates/chord/src/fault.rs
// Error-path fixture: silent Result discards and wildcard error arms
// on the delivery path.
use crate::network::NetworkError;

fn inject() -> Result<(), NetworkError> {
    Ok(())
}

pub fn exercise() {
    let _ = inject(); //~ ERROR error-path
    let _ = compute(); //~ ERROR error-path
    inject().ok(); //~ ERROR error-path
}

pub fn classify(r: Result<(), NetworkError>) -> u32 {
    match r {
        Ok(()) => 0,
        Err(NetworkError::TimedOut { attempts }) => attempts,
        Err(_) => 1, //~ ERROR error-path
    }
}

pub fn resolve(e: ActionError) -> u32 {
    match e {
        ActionError::Occupied => 1,
        _ => 0, //~ ERROR error-path
    }
}

// A match free of the error enums may still use wildcards.
pub fn bucket(n: u32) -> u32 {
    match n {
        0 => 0,
        _ => 1,
    }
}

// An audited discard carries its reason and stays silent.
pub fn audited() {
    // autobal-lint: allow(error-path, "fixture: demonstrates an audited discard")
    let _ = inject();
}
