//! End-to-end checks of the `autobal-lint` binary: exit codes, the
//! rule catalogue, rule filtering, and the machine formats.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autobal-lint"))
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn list_rules_prints_the_catalogue_and_exits_clean() {
    let out = bin().arg("--list-rules").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).expect("utf8");
    for id in [
        "determinism",
        "panic-safety",
        "strategy-locality",
        "output-discipline",
        "layering",
        "error-path",
        "float-order",
        "telemetry-vocab",
        "unused-allow",
        "malformed-allow",
    ] {
        assert!(text.contains(id), "--list-rules is missing `{id}`:\n{text}");
    }
}

#[test]
fn clean_workspace_exits_zero_in_every_format() {
    for format in ["text", "json", "github"] {
        let out = bin()
            .arg("--format")
            .arg(format)
            .arg(workspace_root())
            .output()
            .expect("binary runs");
        assert_eq!(
            out.status.code(),
            Some(0),
            "format {format}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn json_output_is_well_formed_on_a_clean_tree() {
    let out = bin()
        .arg("--format")
        .arg("json")
        .arg(workspace_root())
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(text, "{\"findings\":[],\"count\":0}\n");
}

#[test]
fn rule_filter_accepts_every_catalogued_id() {
    // `--rule` must understand the meta-diagnostics too, not only the
    // eight scanning families.
    for id in ["layering", "unused-allow"] {
        let out = bin()
            .arg("--rule")
            .arg(id)
            .arg(workspace_root())
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(0), "--rule {id} failed");
    }
}

#[test]
fn bad_arguments_exit_two() {
    for args in [
        &["--rule", "no-such-rule"][..],
        &["--format", "yaml"][..],
        &["--frobnicate"][..],
        &["--rule"][..],
    ] {
        let out = bin().args(args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "args {args:?} must exit 2");
        assert!(
            !String::from_utf8_lossy(&out.stderr).is_empty(),
            "args {args:?} must explain themselves on stderr"
        );
    }
}

#[test]
fn findings_exit_one() {
    // A throwaway tree with a single violating file: the binary must
    // report it, exit 1, and carry it through the github format.
    let dir = std::env::temp_dir().join(format!("autobal-lint-cli-{}", std::process::id()));
    let src = dir.join("crates/core/src/strategy");
    std::fs::create_dir_all(&src).expect("scratch tree");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    std::fs::write(
        src.join("bad.rs"),
        "pub fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n",
    )
    .expect("fixture file");

    let out = bin().arg(&dir).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        text.contains("[float-order]") && text.contains("bad.rs:2"),
        "unexpected report:\n{text}"
    );

    let gh = bin()
        .arg("--format")
        .arg("github")
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert_eq!(gh.status.code(), Some(1));
    let gh_text = String::from_utf8(gh.stdout).expect("utf8");
    assert!(
        gh_text.contains("::error file=") && gh_text.contains("line=2"),
        "unexpected annotations:\n{gh_text}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
