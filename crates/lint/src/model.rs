//! The workspace model: per-crate module trees plus the cross-crate
//! import graph, built from every scanned file's parsed skeleton.
//!
//! Crate attribution is positional — `crates/<name>/src/…` belongs to
//! `autobal-<name>`, anything under the root `src/` to the umbrella
//! crate `autobal` — so the model needs no Cargo metadata. The pinned
//! layer table ([`LAYERS`]) is the machine-readable form of the crate
//! DAG documented in `DESIGN.md`; rule L checks the *observed* import
//! graph against it and independently proves the observed graph
//! acyclic.

use crate::lexer::{lex, test_mask, Tok, TokKind};
use crate::parser::{parse_items, Items};
use std::collections::{BTreeMap, BTreeSet};

/// One analyzed source file.
#[derive(Debug, Clone)]
pub struct FileModel {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Owning crate (`autobal`, `autobal-core`, …), when attributable.
    pub krate: Option<String>,
    pub toks: Vec<Tok>,
    /// `mask[line - 1]` is true for `#[cfg(test)]`-exempt lines.
    pub mask: Vec<bool>,
    pub items: Items,
}

impl FileModel {
    pub fn masked(&self, line: usize) -> bool {
        line.checked_sub(1)
            .and_then(|z| self.mask.get(z).copied())
            .unwrap_or(false)
    }
}

/// The whole scanned workspace.
#[derive(Debug, Default)]
pub struct Workspace {
    pub files: Vec<FileModel>,
    /// Non-Rust inputs (the golden schema fixture), path → text.
    pub resources: BTreeMap<String, String>,
}

/// Maps a workspace-relative path to its owning crate.
pub fn crate_of(rel: &str) -> Option<String> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let name = rest.split('/').next()?;
        return Some(format!("autobal-{name}"));
    }
    if rel.starts_with("src/") {
        return Some("autobal".to_string());
    }
    None
}

/// The pinned crate-layer DAG: each first-party crate with the set of
/// first-party crates it may import. An edge here means "may depend
/// on"; the table is itself a DAG (proved by a unit test), and rule L
/// holds every observed import to it — anything else is an upward or
/// sideways import and a finding.
pub const LAYERS: &[(&str, &[&str])] = &[
    ("autobal-id", &[]),
    ("autobal-stats", &["autobal-id"]),
    ("autobal-metrics", &["autobal-stats"]),
    ("autobal-telemetry", &["autobal-metrics"]),
    ("autobal-meminstr", &[]),
    ("autobal-lint", &[]),
    ("autobal-chord", &["autobal-id", "autobal-telemetry"]),
    ("autobal-viz", &["autobal-id", "autobal-stats"]),
    (
        "autobal-core",
        &[
            "autobal-id",
            "autobal-stats",
            "autobal-telemetry",
            "autobal-metrics",
        ],
    ),
    (
        "autobal-workload",
        &["autobal-id", "autobal-stats", "autobal-core"],
    ),
    (
        "autobal",
        &[
            "autobal-id",
            "autobal-stats",
            "autobal-chord",
            "autobal-core",
            "autobal-workload",
            "autobal-viz",
            "autobal-telemetry",
            "autobal-metrics",
            "autobal-meminstr",
        ],
    ),
    (
        "autobal-bench",
        &[
            "autobal-id",
            "autobal-stats",
            "autobal-chord",
            "autobal-core",
            "autobal-workload",
        ],
    ),
    (
        "autobal-experiments",
        &[
            "autobal",
            "autobal-id",
            "autobal-stats",
            "autobal-chord",
            "autobal-core",
            "autobal-workload",
            "autobal-viz",
            "autobal-telemetry",
            "autobal-metrics",
            "autobal-meminstr",
        ],
    ),
];

/// Looks a crate up in the pinned layer table.
pub fn allowed_imports(krate: &str) -> Option<&'static [&'static str]> {
    LAYERS
        .iter()
        .find(|(name, _)| *name == krate)
        .map(|(_, deps)| *deps)
}

/// Converts an extern-crate identifier (`autobal_core`) to the crate
/// name (`autobal-core`). Returns `None` for non-first-party roots.
pub fn ident_to_crate(ident: &str) -> Option<String> {
    if ident == "autobal" {
        return Some("autobal".to_string());
    }
    if let Some(rest) = ident.strip_prefix("autobal_") {
        if !rest.is_empty() {
            return Some(format!("autobal-{}", rest.replace('_', "-")));
        }
    }
    None
}

/// One observed cross-crate import.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ImportEdge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: usize,
}

impl Workspace {
    /// Builds the model from `(path, text)` inputs. Paths ending in
    /// `.rs` are lexed and parsed; anything else becomes a resource.
    pub fn build(inputs: &[(String, String)]) -> Workspace {
        let mut ws = Workspace::default();
        for (rel, text) in inputs {
            if !rel.ends_with(".rs") {
                ws.resources.insert(rel.clone(), text.clone());
                continue;
            }
            let toks = lex(text);
            let mask = test_mask(&toks, text.lines().count());
            let items = parse_items(&toks);
            ws.files.push(FileModel {
                rel: rel.clone(),
                krate: crate_of(rel),
                toks,
                mask,
                items,
            });
        }
        ws
    }

    /// Every cross-crate import the sources exhibit, from both `use`
    /// declarations and fully-qualified `autobal_x::…` paths, test
    /// code excluded, deduplicated per `(file, line, to)`.
    pub fn import_edges(&self) -> Vec<ImportEdge> {
        let mut seen = BTreeSet::new();
        let mut edges = Vec::new();
        for file in &self.files {
            let Some(from) = file.krate.clone() else {
                continue;
            };
            let mut push = |to: String, line: usize| {
                if to == from {
                    return; // self-reference, not an edge
                }
                if seen.insert((file.rel.clone(), line, to.clone())) {
                    edges.push(ImportEdge {
                        from: from.clone(),
                        to,
                        file: file.rel.clone(),
                        line,
                    });
                }
            };
            for u in &file.items.uses {
                if file.masked(u.line) {
                    continue;
                }
                if let Some(to) = ident_to_crate(u.root()) {
                    push(to, u.line);
                }
            }
            // Fully-qualified paths outside `use` items: an ident that
            // maps to a first-party crate followed by `::`.
            let mut it = file.toks.iter().peekable();
            while let Some(tok) = it.next() {
                if tok.kind != TokKind::Ident || file.masked(tok.line) {
                    continue;
                }
                if !it.peek().is_some_and(|n| n.is_punct("::")) {
                    continue;
                }
                if let Some(to) = ident_to_crate(&tok.text) {
                    push(to, tok.line);
                }
            }
        }
        edges
    }

    /// The file defining `enum <name>`, with the declaration, if any.
    /// When several files declare the same enum name (fixtures), the
    /// first in scan order wins.
    pub fn find_enum(&self, name: &str) -> Option<(&FileModel, &crate::parser::EnumDecl)> {
        for file in &self.files {
            for e in &file.items.enums {
                if e.name == name && !file.masked(e.line) {
                    return Some((file, e));
                }
            }
        }
        None
    }

    /// Names of workspace `fn`s whose declared return type mentions
    /// `Result` — the call-site vocabulary rule E treats as fallible.
    pub fn fallible_fns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for file in &self.files {
            for f in &file.items.fns {
                if f.returns_result {
                    out.insert(f.name.clone());
                }
            }
        }
        out
    }

    pub fn file(&self, rel: &str) -> Option<&FileModel> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// Detects a cycle in a crate-dependency graph given as edges
/// `(from, to)`. Returns the crates on the first cycle found, in
/// order, or `None` when the graph is acyclic. Used both on the
/// observed import graph (rule L's belt-and-braces check) and on the
/// pinned table itself (unit test).
pub fn find_cycle(edges: &[(String, String)]) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edges {
        adj.entry(from.as_str()).or_default().insert(to.as_str());
    }
    // Iterative DFS with colors: 0 unseen, 1 on stack, 2 done.
    let mut color: BTreeMap<&str, u8> = BTreeMap::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for start in nodes {
        if color.get(start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, Vec::new())];
        while let Some((node, path)) = stack.pop() {
            match color.get(node).copied().unwrap_or(0) {
                0 => {
                    color.insert(node, 1);
                    let mut back = path.clone();
                    back.push(node);
                    // Re-push to mark done after children.
                    stack.push((node, path.clone()));
                    for next in adj.get(node).into_iter().flatten() {
                        if color.get(next).copied().unwrap_or(0) == 1 {
                            // Found a cycle: slice the path from the
                            // first occurrence of `next`.
                            let mut cycle: Vec<String> = back
                                .iter()
                                .skip_while(|n| **n != *next)
                                .map(|n| n.to_string())
                                .collect();
                            cycle.push(next.to_string());
                            return Some(cycle);
                        }
                        if color.get(next).copied().unwrap_or(0) == 0 {
                            stack.push((next, back.clone()));
                        }
                    }
                }
                1 => {
                    color.insert(node, 2);
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_attribution() {
        assert_eq!(
            crate_of("crates/core/src/sim.rs"),
            Some("autobal-core".to_string())
        );
        assert_eq!(crate_of("src/protocol_sim.rs"), Some("autobal".to_string()));
        assert_eq!(
            crate_of("src/bin/autobal-cli.rs"),
            Some("autobal".to_string())
        );
        assert_eq!(crate_of("tests/chaos.rs"), None);
    }

    #[test]
    fn ident_mapping() {
        assert_eq!(ident_to_crate("autobal_id"), Some("autobal-id".to_string()));
        assert_eq!(ident_to_crate("autobal"), Some("autobal".to_string()));
        assert_eq!(ident_to_crate("std"), None);
        assert_eq!(ident_to_crate("autobal_"), None);
    }

    #[test]
    fn pinned_table_is_a_dag_and_closed() {
        let mut edges = Vec::new();
        for (from, deps) in LAYERS {
            for to in *deps {
                // Every dependency is itself in the table.
                assert!(
                    allowed_imports(to).is_some(),
                    "{to} missing from the layer table"
                );
                edges.push((from.to_string(), to.to_string()));
            }
        }
        assert_eq!(
            find_cycle(&edges),
            None,
            "the pinned layer table must be a DAG"
        );
    }

    #[test]
    fn cycle_detection_finds_cycles() {
        let edges = vec![
            ("a".to_string(), "b".to_string()),
            ("b".to_string(), "c".to_string()),
            ("c".to_string(), "a".to_string()),
        ];
        let cycle = find_cycle(&edges).expect("cycle exists");
        assert!(cycle.len() >= 3);
        assert_eq!(find_cycle(&edges[..2]), None);
    }

    #[test]
    fn import_edges_come_from_uses_and_paths() {
        let ws = Workspace::build(&[(
            "crates/core/src/x.rs".to_string(),
            "use autobal_id::Id;\nfn f() { autobal_stats::gini(&[]); }\n\
             #[cfg(test)]\nmod tests { use autobal_workload::gen; }\n"
                .to_string(),
        )]);
        let edges = ws.import_edges();
        let tos: Vec<&str> = edges.iter().map(|e| e.to.as_str()).collect();
        assert_eq!(tos, vec!["autobal-id", "autobal-stats"], "test code exempt");
        assert_eq!(edges[0].line, 1);
        assert_eq!(edges[1].line, 2);
    }

    #[test]
    fn fallible_fn_vocabulary() {
        let ws = Workspace::build(&[(
            "crates/chord/src/network.rs".to_string(),
            "pub fn leave(&mut self, id: Id) -> Result<(), NetworkError> { Ok(()) }\n\
             pub fn size(&self) -> usize { 0 }\n"
                .to_string(),
        )]);
        let fallible = ws.fallible_fns();
        assert!(fallible.contains("leave"));
        assert!(!fallible.contains("size"));
    }
}
