//! Item-level parser: token stream → source skeleton.
//!
//! The rules do not need full Rust semantics — they need to know what
//! a file *imports* (`use` trees, expanded), what it *declares*
//! (`fn` signatures with their fallibility, `enum` variants, `mod`s),
//! and enough statement shape to see `let _ = …;` discards and
//! `match` arms. Everything here is a linear scan over the token
//! stream with explicit depth tracking; spans (line numbers) ride
//! along on every node. Malformed input degrades to fewer items,
//! never a panic.

use crate::lexer::{Tok, TokKind};

/// One fully-expanded `use` path: `use a::{b, c::d};` yields two
/// decls, `a::b` and `a::c::d`. Glob imports keep their `*` leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// 1-indexed line of the `use` keyword.
    pub line: usize,
    /// `::`-joined path segments, aliases dropped.
    pub path: String,
}

impl UseDecl {
    /// First path segment (`super`, `crate`, `std`, `autobal_id`, …).
    pub fn root(&self) -> &str {
        self.path.split("::").next().unwrap_or("")
    }

    /// Last path segment (the imported name, or `*`).
    pub fn leaf(&self) -> &str {
        self.path.rsplit("::").next().unwrap_or("")
    }
}

/// One `fn` item (free function, inherent or trait method).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDecl {
    pub name: String,
    pub line: usize,
    /// The declared return type mentions `Result`.
    pub returns_result: bool,
    /// Token-index range of the body block, `(open_brace, close_brace)`
    /// inclusive; `None` for bodyless trait methods.
    pub body: Option<(usize, usize)>,
}

/// One variant of an `enum` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    pub name: String,
    pub line: usize,
}

/// One `enum` item with its variant list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumDecl {
    pub name: String,
    pub line: usize,
    pub variants: Vec<Variant>,
}

/// One `mod` declaration (inline or out-of-line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModDecl {
    pub name: String,
    pub line: usize,
    pub inline: bool,
}

/// The parsed skeleton of one file.
#[derive(Debug, Clone, Default)]
pub struct Items {
    pub uses: Vec<UseDecl>,
    pub fns: Vec<FnDecl>,
    pub enums: Vec<EnumDecl>,
    pub mods: Vec<ModDecl>,
}

/// Finds the token index of the brace/paren/bracket matching the
/// opener at `open`. Returns `None` when unbalanced.
pub fn matching(toks: &[Tok], open: usize) -> Option<usize> {
    let (open_text, close_text) = match toks.get(open)?.text.as_str() {
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => return None,
    };
    let mut depth = 0usize;
    for (off, tok) in toks.iter().enumerate().skip(open) {
        if tok.kind != TokKind::Punct {
            continue;
        }
        if tok.text == open_text {
            depth += 1;
        } else if tok.text == close_text {
            depth -= 1;
            if depth == 0 {
                return Some(off);
            }
        }
    }
    None
}

/// Parses the item skeleton out of a token stream.
pub fn parse_items(toks: &[Tok]) -> Items {
    let mut items = Items::default();
    let mut i = 0usize;
    while let Some(tok) = toks.get(i) {
        if tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match tok.text.as_str() {
            "use" => i = parse_use(toks, i, &mut items),
            "fn" => i = parse_fn(toks, i, &mut items),
            "enum" => i = parse_enum(toks, i, &mut items),
            "mod" => i = parse_mod(toks, i, &mut items),
            _ => i += 1,
        }
    }
    items
}

/// Parses `use …;` starting at the `use` keyword index; returns the
/// index just past the terminating `;`.
fn parse_use(toks: &[Tok], use_idx: usize, items: &mut Items) -> usize {
    let line = toks.get(use_idx).map(|t| t.line).unwrap_or(1);
    // Collect tokens to the `;` (tree braces included).
    let mut end = use_idx + 1;
    let mut depth = 0i64;
    while let Some(tok) = toks.get(end) {
        match tok.text.as_str() {
            "{" if tok.kind == TokKind::Punct => depth += 1,
            "}" if tok.kind == TokKind::Punct => depth -= 1,
            ";" if tok.kind == TokKind::Punct && depth <= 0 => break,
            _ => {}
        }
        end += 1;
    }
    let body = toks.get(use_idx + 1..end).unwrap_or(&[]);
    expand_use_tree(body, &[], line, &mut items.uses);
    end + 1
}

/// Recursively expands a use-tree token slice into flat paths.
/// `prefix` holds the segments accumulated so far.
fn expand_use_tree(toks: &[Tok], prefix: &[String], line: usize, out: &mut Vec<UseDecl>) {
    // Split the slice at top-level commas; each piece is one subtree.
    let mut depth = 0i64;
    let mut start = 0usize;
    let mut pieces: Vec<&[Tok]> = Vec::new();
    for (idx, tok) in toks.iter().enumerate() {
        match tok.text.as_str() {
            "{" if tok.kind == TokKind::Punct => depth += 1,
            "}" if tok.kind == TokKind::Punct => depth -= 1,
            "," if tok.kind == TokKind::Punct && depth == 0 => {
                if let Some(p) = toks.get(start..idx) {
                    pieces.push(p);
                }
                start = idx + 1;
            }
            _ => {}
        }
    }
    if let Some(p) = toks.get(start..) {
        pieces.push(p);
    }
    for piece in pieces {
        expand_use_piece(piece, prefix, line, out);
    }
}

fn expand_use_piece(piece: &[Tok], prefix: &[String], line: usize, out: &mut Vec<UseDecl>) {
    let mut segs: Vec<String> = prefix.to_vec();
    let mut j = 0usize;
    while let Some(tok) = piece.get(j) {
        match tok.kind {
            TokKind::Ident if tok.text == "as" => {
                // Alias: the remaining tokens rename the import; the
                // path itself is complete.
                break;
            }
            TokKind::Ident => {
                segs.push(tok.text.clone());
                j += 1;
            }
            TokKind::Punct if tok.text == "::" => {
                j += 1;
            }
            TokKind::Punct if tok.text == "*" => {
                segs.push("*".to_string());
                j += 1;
            }
            TokKind::Punct if tok.text == "{" => {
                let inner_line = tok.line;
                let end = matching(piece, j).unwrap_or(piece.len());
                let inner = piece.get(j + 1..end).unwrap_or(&[]);
                expand_use_tree(inner, &segs, inner_line, out);
                return;
            }
            _ => {
                j += 1;
            }
        }
    }
    if segs.len() > prefix.len() {
        out.push(UseDecl {
            line,
            path: segs.join("::"),
        });
    }
}

/// Parses a `fn` item starting at the `fn` keyword; returns the index
/// to continue from (just past the signature — the body is scanned by
/// the main loop too, so nested `fn`s and `use`s inside bodies are
/// still collected).
fn parse_fn(toks: &[Tok], fn_idx: usize, items: &mut Items) -> usize {
    let Some(name_tok) = toks.get(fn_idx + 1) else {
        return fn_idx + 1;
    };
    if name_tok.kind != TokKind::Ident {
        return fn_idx + 1;
    }
    let name = name_tok.text.clone();
    let line = name_tok.line;
    // Skip generics between name and the parameter list.
    let mut j = fn_idx + 2;
    let mut angle = 0i64;
    while let Some(tok) = toks.get(j) {
        match tok.text.as_str() {
            "<" if tok.kind == TokKind::Punct => angle += 1,
            ">" if tok.kind == TokKind::Punct => angle -= 1,
            "(" if tok.kind == TokKind::Punct && angle <= 0 => break,
            "{" | ";" if tok.kind == TokKind::Punct => return fn_idx + 1,
            _ => {}
        }
        j += 1;
    }
    let params_end = matching(toks, j).unwrap_or(j);
    // Return type: tokens between `)` and the body `{` / `;` / `where`.
    let mut returns_result = false;
    let mut k = params_end + 1;
    let mut saw_arrow = false;
    while let Some(tok) = toks.get(k) {
        match tok.text.as_str() {
            "->" if tok.kind == TokKind::Punct => saw_arrow = true,
            "{" | ";" if tok.kind == TokKind::Punct => break,
            "where" if tok.kind == TokKind::Ident => break,
            "Result" if tok.kind == TokKind::Ident && saw_arrow => returns_result = true,
            _ => {}
        }
        k += 1;
    }
    // Find the body block (skip a `where` clause if present).
    let mut body = None;
    let mut b = k;
    while let Some(tok) = toks.get(b) {
        if tok.is_punct(";") {
            break;
        }
        if tok.is_punct("{") {
            let close = matching(toks, b).unwrap_or(b);
            body = Some((b, close));
            break;
        }
        b += 1;
    }
    items.fns.push(FnDecl {
        name,
        line,
        returns_result,
        body,
    });
    // Continue from just past the parameter list so body items are
    // still visited by the main loop.
    params_end + 1
}

fn parse_enum(toks: &[Tok], enum_idx: usize, items: &mut Items) -> usize {
    let Some(name_tok) = toks.get(enum_idx + 1) else {
        return enum_idx + 1;
    };
    if name_tok.kind != TokKind::Ident {
        return enum_idx + 1;
    }
    // Find the opening brace (skipping generics / where clauses).
    let mut j = enum_idx + 2;
    while let Some(tok) = toks.get(j) {
        if tok.is_punct("{") {
            break;
        }
        if tok.is_punct(";") {
            return j + 1;
        }
        j += 1;
    }
    let Some(close) = matching(toks, j) else {
        return j + 1;
    };
    let mut variants = Vec::new();
    let mut k = j + 1;
    while k < close {
        // Skip attributes on the variant.
        while toks.get(k).is_some_and(|t| t.is_punct("#")) {
            if toks.get(k + 1).is_some_and(|t| t.is_punct("[")) {
                k = matching(toks, k + 1).map(|e| e + 1).unwrap_or(k + 2);
            } else {
                k += 1;
            }
        }
        let Some(tok) = toks.get(k) else { break };
        if k >= close {
            break;
        }
        if tok.kind == TokKind::Ident {
            variants.push(Variant {
                name: tok.text.clone(),
                line: tok.line,
            });
            k += 1;
            // Skip the payload / discriminant to the next top-level
            // comma inside the enum body.
            while let Some(t) = toks.get(k) {
                if k >= close {
                    break;
                }
                match t.text.as_str() {
                    "(" | "{" | "[" if t.kind == TokKind::Punct => {
                        k = matching(toks, k).map(|e| e + 1).unwrap_or(k + 1);
                    }
                    "," if t.kind == TokKind::Punct => {
                        k += 1;
                        break;
                    }
                    _ => k += 1,
                }
            }
        } else {
            k += 1;
        }
    }
    items.enums.push(EnumDecl {
        name: name_tok.text.clone(),
        line: name_tok.line,
        variants,
    });
    close + 1
}

fn parse_mod(toks: &[Tok], mod_idx: usize, items: &mut Items) -> usize {
    let Some(name_tok) = toks.get(mod_idx + 1) else {
        return mod_idx + 1;
    };
    if name_tok.kind != TokKind::Ident {
        return mod_idx + 1;
    }
    let inline = toks.get(mod_idx + 2).is_some_and(|t| t.is_punct("{"));
    items.mods.push(ModDecl {
        name: name_tok.text.clone(),
        line: name_tok.line,
        inline,
    });
    // Descend into inline mods (the main loop keeps scanning), skip
    // only the declaration tokens themselves.
    mod_idx + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn paths(src: &str) -> Vec<String> {
        parse_items(&lex(src))
            .uses
            .into_iter()
            .map(|u| u.path)
            .collect()
    }

    #[test]
    fn use_trees_expand() {
        assert_eq!(paths("use a::b;"), vec!["a::b"]);
        assert_eq!(
            paths("use a::{b, c::d, e::{f, g}};"),
            vec!["a::b", "a::c::d", "a::e::f", "a::e::g"]
        );
        assert_eq!(paths("use a::b as c;"), vec!["a::b"]);
        assert_eq!(paths("use a::*;"), vec!["a::*"]);
        assert_eq!(paths("use super::{Actions, LocalView};").len(), 2);
    }

    #[test]
    fn use_roots_and_leaves() {
        let items = parse_items(&lex("use autobal_id::{ring, Id};"));
        let roots: Vec<&str> = items.uses.iter().map(|u| u.root()).collect();
        assert_eq!(roots, vec!["autobal_id", "autobal_id"]);
        let leaves: Vec<&str> = items.uses.iter().map(|u| u.leaf()).collect();
        assert_eq!(leaves, vec!["ring", "Id"]);
    }

    #[test]
    fn fns_record_fallibility_and_bodies() {
        let src = "fn a() -> Result<u64, Error> { 1 }\n\
                   fn b(x: u64) -> u64 { x }\n\
                   fn c<T: Into<Result<u8, ()>>>(t: T);";
        let items = parse_items(&lex(src));
        assert_eq!(items.fns.len(), 3);
        let a = &items.fns[0];
        assert!(a.returns_result && a.body.is_some());
        let b = &items.fns[1];
        assert!(!b.returns_result);
        // Generic bounds are not return types.
        let c = &items.fns[2];
        assert!(!c.returns_result && c.body.is_none());
    }

    #[test]
    fn enums_record_variants() {
        let src = "pub enum ActionError {\n    Occupied,\n    #[serde(rename = \"x\")]\n    Unreachable,\n    TimedOut { attempts: u32 },\n    Coded(u8) = 3,\n}";
        let items = parse_items(&lex(src));
        assert_eq!(items.enums.len(), 1);
        let names: Vec<&str> = items.enums[0]
            .variants
            .iter()
            .map(|v| v.name.as_str())
            .collect();
        assert_eq!(names, vec!["Occupied", "Unreachable", "TimedOut", "Coded"]);
        assert_eq!(items.enums[0].variants[2].line, 5);
    }

    #[test]
    fn uses_inside_fn_bodies_are_seen() {
        let items = parse_items(&lex("fn f() { use std::mem; mem::drop(1); }"));
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.uses.len(), 1);
        assert_eq!(items.uses[0].path, "std::mem");
    }

    #[test]
    fn mods_inline_and_external() {
        let items = parse_items(&lex("mod a { fn x() {} }\nmod b;"));
        assert_eq!(items.mods.len(), 2);
        assert!(items.mods[0].inline);
        assert!(!items.mods[1].inline);
        assert_eq!(items.fns.len(), 1);
    }

    #[test]
    fn malformed_input_degrades() {
        for src in ["use ;", "fn", "enum {", "mod", "use a::{b", "fn f("] {
            let _ = parse_items(&lex(src));
        }
    }
}
