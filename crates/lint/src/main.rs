//! The `autobal-lint` binary: scans the workspace's first-party crates
//! and exits nonzero when any invariant violation is found.
//!
//! ```text
//! cargo run --release -p autobal-lint            # scan the workspace
//! cargo run --release -p autobal-lint -- <root>  # scan an explicit root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

/// Walks upward from `start` to the directory that owns the workspace
/// (identified by a `Cargo.toml` next to a `crates/` directory).
fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) if arg == "--help" || arg == "-h" => {
            eprintln!("usage: autobal-lint [WORKSPACE_ROOT]");
            eprintln!(
                "Checks determinism, panic-safety, strategy-locality, and \
                 output-discipline invariants."
            );
            return ExitCode::SUCCESS;
        }
        Some(arg) => PathBuf::from(arg),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(cwd) {
                Some(r) => r,
                None => {
                    eprintln!("autobal-lint: cannot locate the workspace root; pass it explicitly");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let findings = match autobal_lint::scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("autobal-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("autobal-lint: clean ({} rule families enforced)", 4);
        ExitCode::SUCCESS
    } else {
        eprintln!("autobal-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
