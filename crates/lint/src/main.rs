//! The `autobal-lint` binary: scans the workspace's first-party crates
//! and reports invariant violations.
//!
//! ```text
//! cargo run --release -p autobal-lint                     # scan the workspace
//! cargo run --release -p autobal-lint -- --list-rules     # rule catalogue
//! cargo run --release -p autobal-lint -- --rule layering  # one family only
//! cargo run --release -p autobal-lint -- --format json    # machine-readable
//! cargo run --release -p autobal-lint -- <root>           # explicit root
//! ```
//!
//! Exit codes: `0` clean, `1` findings reported, `2` internal error
//! (bad arguments, unreadable workspace).

use autobal_lint::{render_github, render_json, scan_workspace, Rule, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const EXIT_CLEAN: u8 = 0;
const EXIT_FINDINGS: u8 = 1;
const EXIT_ERROR: u8 = 2;

/// Walks upward from `start` to the directory that owns the workspace
/// (identified by a `Cargo.toml` next to a `crates/` directory).
fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

enum Format {
    Text,
    Json,
    Github,
}

struct Args {
    root: Option<PathBuf>,
    rule: Option<Rule>,
    format: Format,
}

fn usage() {
    eprintln!(
        "usage: autobal-lint [OPTIONS] [WORKSPACE_ROOT]\n\
         \n\
         Machine-checks the workspace invariants (determinism, panic-safety,\n\
         strategy-locality, output-discipline, layering, error-path,\n\
         float-order, telemetry-vocab).\n\
         \n\
         options:\n\
           --list-rules         print the rule catalogue and exit\n\
           --rule <id>          report only this rule family\n\
           --format <fmt>       text (default), json, or github\n\
           -h, --help           this help"
    );
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut root = None;
    let mut rule = None;
    let mut format = Format::Text;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                usage();
                return Ok(None);
            }
            "--list-rules" => {
                for (r, what) in RULES {
                    println!("{:<18} {}", r.id(), what);
                }
                return Ok(None);
            }
            "--rule" => {
                let id = argv.next().ok_or("--rule needs a rule id")?;
                rule = Some(Rule::from_id_any(&id).ok_or_else(|| format!("unknown rule `{id}`"))?);
            }
            "--format" => {
                let f = argv.next().ok_or("--format needs text|json|github")?;
                format = match f.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "github" => Format::Github,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            path => {
                if root.is_some() {
                    return Err("more than one workspace root given".to_string());
                }
                root = Some(PathBuf::from(path));
            }
        }
    }
    Ok(Some(Args { root, rule, format }))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::from(EXIT_CLEAN),
        Err(why) => {
            eprintln!("autobal-lint: {why}");
            usage();
            return ExitCode::from(EXIT_ERROR);
        }
    };

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(cwd) {
                Some(r) => r,
                None => {
                    eprintln!("autobal-lint: cannot locate the workspace root; pass it explicitly");
                    return ExitCode::from(EXIT_ERROR);
                }
            }
        }
    };

    let mut findings = match scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("autobal-lint: scan failed: {e}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    if let Some(rule) = args.rule {
        findings.retain(|f| f.rule == rule);
    }

    match args.format {
        Format::Text => {
            for f in &findings {
                println!("{f}");
            }
        }
        Format::Json => print!("{}", render_json(&findings)),
        Format::Github => print!("{}", render_github(&findings)),
    }

    if findings.is_empty() {
        eprintln!(
            "autobal-lint: clean ({} rule families enforced)",
            RULES.len() - 2
        );
        ExitCode::from(EXIT_CLEAN)
    } else {
        eprintln!("autobal-lint: {} finding(s)", findings.len());
        ExitCode::from(EXIT_FINDINGS)
    }
}
