//! `autobal-lint` — the workspace invariant analyzer.
//!
//! The repo's load-bearing contracts are enforced at runtime by
//! `tests/determinism.rs`, `tests/strategy_parity.rs`, and the chaos
//! suite — but a runtime test only catches a violation when a seed
//! happens to expose it. This crate machine-checks the contracts at the
//! source level, before any seed gets a vote:
//!
//! * **D — determinism** (`determinism`): no `thread_rng`, no
//!   entropy-seeded RNGs, no wall-clock (`SystemTime` / `Instant`), and
//!   no unordered containers (`HashMap` / `HashSet`) in the decision
//!   paths of `autobal-core`, `autobal-chord`, `autobal-workload`,
//!   `autobal-experiments`, and the root crate. Deterministic runs must
//!   draw all randomness from seeded ChaCha streams, all time from the
//!   simulated clock, and all iteration from ordered containers.
//! * **P — panic-safety** (`panic-safety`): no `unwrap()` / `expect()` /
//!   `panic!` / slice-indexing in the `autobal-chord` message-delivery
//!   and retry paths (`network.rs`, `eventnet.rs`, `fault.rs`) and the
//!   event-time substrate (`src/event_sim.rs`), whose blocking drains
//!   sit directly on those paths. The fault plane guarantees those
//!   paths are fallible; they must return `NetworkError` /
//!   `ActionError` and degrade, not crash.
//! * **S — strategy locality** (`strategy-locality`): strategy modules
//!   under `crates/core/src/strategy/` may only see the
//!   `LocalView` / `Actions` / `Substrate` surface — never
//!   `autobal_chord` internals, the global simulator (`crate::sim`),
//!   the global ring (`crate::ring`), or the omniscient `OracleView`
//!   (`oracle.rs` carries an explicit, audited exemption). This
//!   mechanizes the paper's claim that every strategy is fully
//!   decentralized.
//! * **O — output discipline** (`output-discipline`): library code in
//!   `autobal-core`, `autobal-chord`, `autobal-workload`,
//!   `autobal-telemetry`, and the root crate may not write to
//!   stdout/stderr directly (`println!` / `eprintln!` / `print!` /
//!   `eprint!`). Observability flows through the telemetry plane and
//!   returned artifacts; the two CLI mains (`autobal-cli`,
//!   `autobal-trace`) are audited output endpoints and carry explicit
//!   exemptions on their print helpers.
//!
//! Findings are suppressible only via an audited annotation — a plain
//! line comment on the offending line or the line directly above it:
//!
//! ```text
//! autobal-lint: allow(<rule>, "<reason>")
//! ```
//!
//! Each annotation suppresses exactly one finding; an annotation that
//! suppresses nothing is itself reported (`unused-allow`), as is one
//! that does not parse (`malformed-allow`). Test code (`#[cfg(test)]`
//! modules and the `tests/` trees) is exempt from D/P/S: assertions may
//! unwrap and iterate however they like.

use std::fmt;
use std::path::{Path, PathBuf};

/// The rule families (plus the two meta-diagnostics that keep the
/// annotation escape hatch honest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D: seeded-stream determinism in decision paths.
    Determinism,
    /// P: graceful degradation in message-delivery/retry paths.
    PanicSafety,
    /// S: strategies see only the LocalView/Actions/Substrate surface.
    StrategyLocality,
    /// O: no direct stdout/stderr writes in library code.
    OutputDiscipline,
    /// An `allow` annotation that suppressed no finding.
    UnusedAllow,
    /// An `autobal-lint:` marker that does not parse as
    /// `allow(<rule>, "<reason>")`.
    MalformedAllow,
}

impl Rule {
    /// The identifier used inside `allow(...)` annotations and printed
    /// in diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::PanicSafety => "panic-safety",
            Rule::StrategyLocality => "strategy-locality",
            Rule::OutputDiscipline => "output-discipline",
            Rule::UnusedAllow => "unused-allow",
            Rule::MalformedAllow => "malformed-allow",
        }
    }

    /// Parses an annotation rule identifier.
    pub fn from_id(s: &str) -> Option<Rule> {
        match s {
            "determinism" => Some(Rule::Determinism),
            "panic-safety" => Some(Rule::PanicSafety),
            "strategy-locality" => Some(Rule::StrategyLocality),
            "output-discipline" => Some(Rule::OutputDiscipline),
            _ => None,
        }
    }
}

/// One diagnostic: a rule violation at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: PathBuf,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Blanks comments and string/char-literal contents while preserving
/// the line structure, so pattern matching only ever sees code.
///
/// Handles line comments, nested block comments, escaped string
/// literals, raw (and byte) strings with any number of `#`s, and the
/// char-literal vs. lifetime ambiguity.
pub fn strip_code(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = String::with_capacity(src.len());
    // Pushes a blanked char, preserving newlines.
    let blank = |out: &mut String, c: char| out.push(if c == '\n' { '\n' } else { ' ' });
    let mut i = 0;
    while i < n {
        let c = b[i];
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            out.push_str("  ");
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw / raw-byte strings: r"...", r#"..."#, br"...", etc.
        if (c == 'r' || c == 'b') && (i == 0 || !is_ident(b[i - 1])) {
            let mut j = i;
            if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                j += 1;
            }
            if b[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0;
                while k < n && b[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == '"' {
                    for _ in i..=k {
                        out.push(' ');
                    }
                    i = k + 1;
                    while i < n {
                        if b[i] == '"'
                            && (i + hashes < n)
                            && b[i + 1..].iter().take(hashes).all(|&h| h == '#')
                        {
                            for _ in 0..=hashes {
                                out.push(' ');
                            }
                            i += 1 + hashes;
                            break;
                        }
                        blank(&mut out, b[i]);
                        i += 1;
                    }
                    continue;
                }
            }
        }
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                    continue;
                }
                let closed = b[i] == '"';
                blank(&mut out, b[i]);
                i += 1;
                if closed {
                    break;
                }
            }
            continue;
        }
        if c == '\'' {
            // 'x' or '\n' is a char literal; 'a (no closing quote within
            // reach) is a lifetime and stays in the code text.
            if i + 1 < n && b[i + 1] == '\\' {
                out.push(' ');
                i += 1;
                while i < n && b[i] != '\'' {
                    if b[i] == '\\' && i + 1 < n {
                        blank(&mut out, b[i]);
                        blank(&mut out, b[i + 1]);
                        i += 2;
                    } else {
                        blank(&mut out, b[i]);
                        i += 1;
                    }
                }
                if i < n {
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'' {
                out.push_str("   ");
                i += 3;
                continue;
            }
            out.push('\'');
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Marks which lines (1-indexed offset 0) sit inside `#[cfg(test)]`
/// blocks. Operates on stripped code so strings cannot fake the
/// attribute.
pub fn test_mask(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut skip_from: Option<i64> = None;
    for (li, line) in lines.iter().enumerate() {
        if pending || skip_from.is_some() {
            mask[li] = true;
        }
        if skip_from.is_none() && line.contains("#[cfg(test)]") {
            pending = true;
            mask[li] = true;
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    if pending && skip_from.is_none() {
                        skip_from = Some(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if skip_from == Some(depth) {
                        skip_from = None;
                    }
                }
                _ => {}
            }
        }
    }
    mask
}

/// A parsed `allow(<rule>, "<reason>")` annotation comment.
#[derive(Debug, Clone)]
struct Allow {
    line: usize, // 1-indexed
    rule: Rule,
    /// The stripped code on this line is blank: the annotation stands
    /// alone and therefore guards the *next* line.
    standalone: bool,
    used: bool,
}

const MARKER: &str = "autobal-lint:";

/// Finds the annotation marker inside a *plain* line comment (`//`, not
/// `///` or `//!` — doc text may mention the syntax without being an
/// annotation). Returns the offset just past the marker.
fn marker_in_comment(line: &str) -> Option<usize> {
    let mut search = 0;
    while let Some(p) = line[search..].find("//") {
        let at = search + p;
        let after = line[at + 2..].chars().next();
        if after != Some('/') && after != Some('!') {
            return line[at..].find(MARKER).map(|m| at + m + MARKER.len());
        }
        search = at + 2;
    }
    None
}

/// Extracts allow annotations (and malformed-marker findings) from the
/// raw source. Annotations inside `#[cfg(test)]` blocks are ignored —
/// test code is exempt from the rules, so it has nothing to suppress.
fn parse_allows(
    file: &Path,
    raw: &str,
    stripped: &str,
    mask: &[bool],
) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    let code_lines: Vec<&str> = stripped.lines().collect();
    for (idx, line) in raw.lines().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let Some(pos) = marker_in_comment(line) else {
            continue;
        };
        let lineno = idx + 1;
        let rest = line[pos..].trim_start();
        let parsed = (|| -> Result<Rule, String> {
            let rest = rest
                .strip_prefix("allow(")
                .ok_or_else(|| "expected `allow(<rule>, \"<reason>\")`".to_string())?;
            let (rule_id, rest) = rest
                .split_once(',')
                .ok_or_else(|| "missing `, \"<reason>\"` after rule".to_string())?;
            let rule = Rule::from_id(rule_id.trim())
                .ok_or_else(|| format!("unknown rule `{}`", rule_id.trim()))?;
            let rest = rest.trim_start();
            let rest = rest
                .strip_prefix('"')
                .ok_or_else(|| "reason must be a quoted string".to_string())?;
            let (reason, rest) = rest
                .split_once('"')
                .ok_or_else(|| "unterminated reason string".to_string())?;
            if reason.trim().is_empty() {
                return Err("reason must not be empty".to_string());
            }
            if !rest.trim_start().starts_with(')') {
                return Err("missing closing `)`".to_string());
            }
            Ok(rule)
        })();
        match parsed {
            Ok(rule) => allows.push(Allow {
                line: lineno,
                rule,
                standalone: code_lines.get(idx).copied().unwrap_or("").trim().is_empty(),
                used: false,
            }),
            Err(why) => bad.push(Finding {
                file: file.to_path_buf(),
                line: lineno,
                rule: Rule::MalformedAllow,
                message: format!("unparseable autobal-lint annotation: {why}"),
            }),
        }
    }
    (allows, bad)
}

/// Returns true when `word` occurs in `line` delimited by non-identifier
/// characters.
fn has_word(line: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(p) = line[start..].find(word) {
        let at = start + p;
        let before_ok = at == 0 || !is_ident(line[..at].chars().next_back().unwrap_or(' '));
        let after = line[at + word.len()..].chars().next();
        let after_ok = !after.is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Detects `.unwrap` / `.expect` method calls (word-delimited, so
/// `unwrap_or` and friends do not match).
fn has_method(line: &str, name: &str) -> bool {
    let needle = format!(".{name}");
    let mut start = 0;
    while let Some(p) = line[start..].find(&needle) {
        let at = start + p;
        let after = line[at + needle.len()..].chars().next();
        if !after.is_some_and(is_ident) {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Keywords that may directly precede a `[` without it being an index
/// expression (`for x in [..]`, `return [..]`, `let [a, b] = ..`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "break", "continue", "else", "in", "let", "match", "mut", "ref", "return", "static",
    "true", "false", "yield", "move", "box", "dyn", "while", "if",
];

/// Detects index expressions: a `[` directly preceded by an identifier,
/// `)`, `]`, or `?` is an indexing operation (and can panic);
/// `#[attr]`, `vec![...]`, types `[T; N]`, `for x in [..]`, and slice
/// patterns after keywords are not.
fn has_index_expr(line: &str) -> bool {
    let mut prev = ' '; // last non-whitespace char
    let mut token = String::new(); // identifier token `prev` belongs to
    let mut in_token = false;
    for c in line.chars() {
        if c == '[' {
            let indexes = if is_ident(prev) {
                !NON_INDEX_KEYWORDS.contains(&token.as_str())
            } else {
                prev == ')' || prev == ']' || prev == '?'
            };
            if indexes {
                return true;
            }
        }
        if is_ident(c) {
            if !in_token {
                token.clear();
                in_token = true;
            }
            token.push(c);
        } else {
            in_token = false;
        }
        if !c.is_whitespace() {
            prev = c;
        }
    }
    false
}

/// Which rule families apply to a workspace-relative path (forward
/// slashes, no leading `./`).
pub fn rules_for(rel: &str) -> Vec<Rule> {
    let mut rules = Vec::new();
    let in_determinism_scope = rel.starts_with("crates/core/src/")
        || rel.starts_with("crates/chord/src/")
        || rel.starts_with("crates/workload/src/")
        || rel.starts_with("crates/experiments/src/")
        || rel.starts_with("src/");
    if in_determinism_scope {
        rules.push(Rule::Determinism);
    }
    if matches!(
        rel,
        "crates/chord/src/network.rs"
            | "crates/chord/src/eventnet.rs"
            | "crates/chord/src/fault.rs"
            | "crates/chord/src/adversary.rs"
            | "src/event_sim.rs"
    ) {
        rules.push(Rule::PanicSafety);
    }
    // `mod.rs` *defines* the strategy surface (including `OracleView`),
    // so only the concrete strategy modules are held to locality.
    if rel.starts_with("crates/core/src/strategy/") && !rel.ends_with("/mod.rs") {
        rules.push(Rule::StrategyLocality);
    }
    // Library crates never print; `autobal-experiments` and the lint
    // binary itself are reporting tools, out of scope by design. The
    // CLI mains live inside these trees and carry audited exemptions.
    let in_output_scope = rel.starts_with("crates/core/src/")
        || rel.starts_with("crates/chord/src/")
        || rel.starts_with("crates/workload/src/")
        || rel.starts_with("crates/telemetry/src/")
        || rel.starts_with("src/");
    if in_output_scope {
        rules.push(Rule::OutputDiscipline);
    }
    rules
}

/// One pattern of a rule family: matcher + diagnostic.
struct Check {
    rule: Rule,
    matches: fn(&str) -> bool,
    message: &'static str,
}

fn checks() -> Vec<Check> {
    vec![
        // ---- D: determinism ------------------------------------------
        Check {
            rule: Rule::Determinism,
            matches: |l| has_word(l, "thread_rng"),
            message: "thread_rng is nondeterministic; draw from a seeded ChaCha stream",
        },
        Check {
            rule: Rule::Determinism,
            matches: |l| has_word(l, "from_entropy"),
            message: "entropy-seeded RNG is nondeterministic; use seed_from_u64 on a pinned seed",
        },
        Check {
            rule: Rule::Determinism,
            matches: |l| has_word(l, "SystemTime"),
            message: "wall-clock time in a deterministic path; use the simulated clock",
        },
        Check {
            rule: Rule::Determinism,
            matches: |l| has_word(l, "Instant"),
            message: "wall-clock time in a deterministic path; use the simulated clock",
        },
        Check {
            rule: Rule::Determinism,
            matches: |l| has_word(l, "HashMap"),
            message:
                "HashMap iteration order is unstable; use BTreeMap or explicitly sorted iteration",
        },
        Check {
            rule: Rule::Determinism,
            matches: |l| has_word(l, "HashSet"),
            message:
                "HashSet iteration order is unstable; use BTreeSet or explicitly sorted iteration",
        },
        // ---- P: panic-safety -----------------------------------------
        Check {
            rule: Rule::PanicSafety,
            matches: |l| has_method(l, "unwrap"),
            message: "unwrap() in a message-delivery/retry path; return an error or degrade",
        },
        Check {
            rule: Rule::PanicSafety,
            matches: |l| has_method(l, "expect"),
            message: "expect() in a message-delivery/retry path; return an error or degrade",
        },
        Check {
            rule: Rule::PanicSafety,
            matches: |l| has_word(l, "panic!") || l.contains("panic!("),
            message: "panic! in a message-delivery/retry path; return an error or degrade",
        },
        Check {
            rule: Rule::PanicSafety,
            matches: |l| l.contains("unreachable!("),
            message: "unreachable! in a message-delivery/retry path; return an error or degrade",
        },
        Check {
            rule: Rule::PanicSafety,
            matches: has_index_expr,
            message: "slice/map indexing can panic under faults; use get()/get_mut()",
        },
        // ---- S: strategy locality ------------------------------------
        Check {
            rule: Rule::StrategyLocality,
            matches: |l| has_word(l, "autobal_chord"),
            message: "strategy reaches into Chord internals; strategies see only LocalView/Actions",
        },
        Check {
            rule: Rule::StrategyLocality,
            matches: |l| l.contains("crate::sim"),
            message: "strategy touches the global simulator; strategies see only LocalView/Actions",
        },
        Check {
            rule: Rule::StrategyLocality,
            matches: |l| l.contains("crate::ring"),
            message: "strategy touches global ring state; strategies see only LocalView/Actions",
        },
        Check {
            rule: Rule::StrategyLocality,
            matches: |l| l.contains("crate::trace") || l.contains("crate::metrics"),
            message: "strategy touches global observability state; use the Actions surface",
        },
        Check {
            rule: Rule::StrategyLocality,
            matches: |l| has_word(l, "OracleView"),
            message:
                "OracleView is the omniscient surface; decentralized strategies must not see it",
        },
        // ---- O: output discipline ------------------------------------
        Check {
            rule: Rule::OutputDiscipline,
            matches: |l| has_word(l, "println"),
            message: "println! in library code; record telemetry or return the text instead",
        },
        Check {
            rule: Rule::OutputDiscipline,
            matches: |l| has_word(l, "eprintln"),
            message: "eprintln! in library code; record telemetry or return the text instead",
        },
        Check {
            rule: Rule::OutputDiscipline,
            matches: |l| has_word(l, "print"),
            message: "print! in library code; record telemetry or return the text instead",
        },
        Check {
            rule: Rule::OutputDiscipline,
            matches: |l| has_word(l, "eprint"),
            message: "eprint! in library code; record telemetry or return the text instead",
        },
    ]
}

/// Scans one file's source, applying the rules `rules_for(rel)` selects.
/// `rel` is the workspace-relative path used in diagnostics.
pub fn scan_source(rel: &str, src: &str) -> Vec<Finding> {
    let file = PathBuf::from(rel);
    let active = rules_for(rel);
    let stripped = strip_code(src);
    let mask = test_mask(&stripped);
    let (mut allows, mut findings) = parse_allows(&file, src, &stripped, &mask);
    let all_checks = checks();

    for (idx, line) in stripped.lines().enumerate() {
        let lineno = idx + 1;
        if mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        for check in all_checks.iter().filter(|c| active.contains(&c.rule)) {
            if !(check.matches)(line) {
                continue;
            }
            // An annotation on this line, or standing alone on the line
            // above, suppresses exactly one finding of its rule.
            let suppressed = allows.iter_mut().find(|a| {
                !a.used
                    && a.rule == check.rule
                    && (a.line == lineno || (a.standalone && a.line + 1 == lineno))
            });
            if let Some(a) = suppressed {
                a.used = true;
                continue;
            }
            findings.push(Finding {
                file: file.clone(),
                line: lineno,
                rule: check.rule,
                message: check.message.to_string(),
            });
        }
    }

    for a in allows.iter().filter(|a| !a.used) {
        findings.push(Finding {
            file: file.clone(),
            line: a.line,
            rule: Rule::UnusedAllow,
            message: format!(
                "allow({}) suppressed nothing; remove the annotation",
                a.rule.id()
            ),
        });
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Recursively collects `.rs` files under `dir`, sorted for stable
/// diagnostics.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The first-party source roots the analyzer walks, relative to the
/// workspace root. Integration tests, benches, fixtures, and the
/// vendored stand-ins are deliberately out of scope.
pub const SCAN_ROOTS: &[&str] = &[
    "src",
    "crates/bench/src",
    "crates/chord/src",
    "crates/core/src",
    "crates/experiments/src",
    "crates/id/src",
    "crates/lint/src",
    "crates/meminstr/src",
    "crates/stats/src",
    "crates/telemetry/src",
    "crates/viz/src",
    "crates/workload/src",
];

/// Scans the whole workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        collect_rs(&root.join(sub), &mut files)?;
    }
    let mut findings = Vec::new();
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(scan_source(&rel, &src));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_comments_and_strings() {
        let src = "let a = \"thread_rng\"; // thread_rng\nlet b = 1;";
        let s = strip_code(src);
        assert!(!s.contains("thread_rng"));
        assert!(s.contains("let b = 1;"));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn strip_handles_raw_strings_and_chars() {
        let src = "let r = r#\"HashMap \" inner\"#; let c = '\\n'; let l: &'static str = x;";
        let s = strip_code(src);
        assert!(!s.contains("HashMap"));
        assert!(s.contains("'static"));
    }

    #[test]
    fn strip_handles_nested_block_comments() {
        let src = "/* outer /* inner HashMap */ still */ let x = 1;";
        let s = strip_code(src);
        assert!(!s.contains("HashMap"));
        assert!(s.contains("let x = 1;"));
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(has_word("use std::collections::HashMap;", "HashMap"));
        assert!(!has_word("let my_thread_rng_count = 1;", "thread_rng"));
        assert!(has_method(".unwrap()", "unwrap"));
        assert!(!has_method("x.unwrap_or(3)", "unwrap"));
        assert!(!has_method("x.unwrap_or_else(f)", "unwrap"));
    }

    #[test]
    fn index_detection() {
        assert!(has_index_expr("let x = ids[(i + k) % n];"));
        assert!(has_index_expr("let y = self.nodes[&cur];"));
        assert!(has_index_expr("f()[0]"));
        assert!(!has_index_expr("#[cfg(feature = x)]"));
        assert!(!has_index_expr("let v = vec![None; 4];"));
        assert!(!has_index_expr("let a: [u8; 4] = x;"));
        assert!(!has_index_expr("fn f(s: &[Id]) {}"));
    }

    #[test]
    fn cfg_test_blocks_are_masked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let mask = test_mask(&strip_code(src));
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn scope_selection() {
        assert_eq!(
            rules_for("crates/chord/src/network.rs"),
            vec![Rule::Determinism, Rule::PanicSafety, Rule::OutputDiscipline]
        );
        assert_eq!(
            rules_for("crates/core/src/strategy/random.rs"),
            vec![
                Rule::Determinism,
                Rule::StrategyLocality,
                Rule::OutputDiscipline
            ]
        );
        assert_eq!(
            rules_for("crates/core/src/strategy/mod.rs"),
            vec![Rule::Determinism, Rule::OutputDiscipline]
        );
        assert_eq!(rules_for("crates/viz/src/svg.rs"), Vec::<Rule>::new());
        assert_eq!(
            rules_for("crates/telemetry/src/sink.rs"),
            vec![Rule::OutputDiscipline]
        );
        assert_eq!(
            rules_for("src/protocol_sim.rs"),
            vec![Rule::Determinism, Rule::OutputDiscipline]
        );
        assert_eq!(
            rules_for("src/event_sim.rs"),
            vec![Rule::Determinism, Rule::PanicSafety, Rule::OutputDiscipline]
        );
        // The adversary module injects faults too: held to panic-safety
        // like the rest of the fault plane.
        assert_eq!(
            rules_for("crates/chord/src/adversary.rs"),
            vec![Rule::Determinism, Rule::PanicSafety, Rule::OutputDiscipline]
        );
        // The cross-check decorator is a strategy-surface citizen: rule
        // S keeps it off substrate internals.
        assert_eq!(
            rules_for("crates/core/src/strategy/crosscheck.rs"),
            vec![
                Rule::Determinism,
                Rule::StrategyLocality,
                Rule::OutputDiscipline
            ]
        );
    }
}
