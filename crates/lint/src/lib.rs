//! `autobal-lint` — the workspace invariant analyzer.
//!
//! The repo's load-bearing contracts are enforced at runtime by
//! `tests/determinism.rs`, `tests/strategy_parity.rs`, and the chaos
//! suite — but a runtime test only catches a violation when a seed
//! happens to expose it. This crate machine-checks the contracts at
//! the source level, before any seed gets a vote. Since v2 it is a
//! real (if small) analyzer: a dependency-free Rust lexer
//! ([`lexer`]) feeds an item-level parser ([`parser`]) that builds a
//! workspace model ([`model`]) — per-crate module trees plus the
//! cross-crate import graph — and eight rule families run over that
//! model ([`rules`]):
//!
//! * **D — determinism** (`determinism`): no `thread_rng`, no
//!   entropy-seeded RNGs, no wall-clock (`SystemTime` / `Instant`), and
//!   no unordered containers (`HashMap` / `HashSet`) in the decision
//!   paths of `autobal-core`, `autobal-chord`, `autobal-workload`,
//!   `autobal-experiments`, and the root crate.
//! * **P — panic-safety** (`panic-safety`): no `unwrap()` / `expect()` /
//!   `panic!` / slice-indexing in the `autobal-chord` message-delivery
//!   and retry paths (`network.rs`, `eventnet.rs`, `fault.rs`,
//!   `adversary.rs`) and the event-time substrate (`src/event_sim.rs`).
//! * **S — strategy locality** (`strategy-locality`): strategy modules
//!   under `crates/core/src/strategy/` may only see the
//!   `LocalView` / `Actions` / `Substrate` surface — never Chord
//!   internals, the global simulator/ring, or the omniscient
//!   `OracleView` (`oracle.rs` carries audited exemptions).
//! * **O — output discipline** (`output-discipline`): library code may
//!   not write to stdout/stderr directly; the two CLI mains are audited
//!   output endpoints.
//! * **L — layering** (`layering`): every cross-crate import in the
//!   observed import graph must be an edge of the pinned crate-layer
//!   DAG ([`model::LAYERS`]); no cycles, no upward imports.
//! * **E — error-path discipline** (`error-path`): no `let _ =` /
//!   trailing `.ok();` discards and no wildcard arms in
//!   `ActionError`/`NetworkError` matches in the delivery, retry,
//!   fault, and adversary paths.
//! * **F — float-order determinism** (`float-order`): no
//!   schedule-ordered reductions over rayon parallel iterators, no
//!   `partial_cmp` comparators (use `f64::total_cmp`).
//! * **T — telemetry vocabulary** (`telemetry-vocab`): every
//!   `SimEvent` variant has an emit site; decision names and
//!   `MessageStatus`/`TraceBody` variants are covered by the trace
//!   summary, the validate schema, and the golden-schema fixture;
//!   every metric name const is snake_case, enumerated in the
//!   registry table, exercised by the golden metrics fixture, and
//!   emitted by at least one use site.
//!
//! Findings are suppressible only via an audited annotation — a plain
//! line comment on the offending line or standing alone on the line
//! directly above it:
//!
//! ```text
//! autobal-lint: allow(<rule>, "<reason>")
//! ```
//!
//! Each annotation suppresses exactly one finding; an annotation that
//! suppresses nothing is itself reported (`unused-allow`) — including
//! one stranded inside a `#[cfg(test)]` region, where the rules do not
//! apply and there is never anything to suppress — as is one that does
//! not parse (`malformed-allow`). Test code is exempt from every rule
//! family: assertions may unwrap and iterate however they like.

pub mod lexer;
pub mod model;
pub mod parser;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

pub use rules::rules_for;

/// The rule families (plus the two meta-diagnostics that keep the
/// annotation escape hatch honest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D: seeded-stream determinism in decision paths.
    Determinism,
    /// P: graceful degradation in message-delivery/retry paths.
    PanicSafety,
    /// S: strategies see only the LocalView/Actions/Substrate surface.
    StrategyLocality,
    /// O: no direct stdout/stderr writes in library code.
    OutputDiscipline,
    /// L: cross-crate imports follow the pinned layer DAG.
    Layering,
    /// E: no silent Result discards, no wildcard error arms.
    ErrorPath,
    /// F: no schedule-ordered float reductions or partial comparators.
    FloatOrder,
    /// T: emitted telemetry vocabulary stays in sync with its
    /// consumers and the golden schema.
    TelemetryVocab,
    /// An `allow` annotation that suppressed no finding.
    UnusedAllow,
    /// An `autobal-lint:` marker that does not parse as
    /// `allow(<rule>, "<reason>")`.
    MalformedAllow,
}

/// Every rule family in diagnostic order, with one-line descriptions —
/// the single source for `--list-rules` and the docs table.
pub const RULES: &[(Rule, &str)] = &[
    (
        Rule::Determinism,
        "no ambient randomness, wall-clock, or unordered containers in decision paths",
    ),
    (
        Rule::PanicSafety,
        "no unwrap/expect/panic!/indexing in message-delivery and retry paths",
    ),
    (
        Rule::StrategyLocality,
        "strategies import only the LocalView/Actions/Substrate surface",
    ),
    (
        Rule::OutputDiscipline,
        "no direct stdout/stderr writes in library code",
    ),
    (
        Rule::Layering,
        "cross-crate imports follow the pinned crate-layer DAG, acyclic",
    ),
    (
        Rule::ErrorPath,
        "no silent Result discards or wildcard error-match arms in fault paths",
    ),
    (
        Rule::FloatOrder,
        "no schedule-ordered float reductions; total_cmp instead of partial_cmp",
    ),
    (
        Rule::TelemetryVocab,
        "emitted SimEvent/Decision/Message vocabulary covered by summary, schema, and fixture",
    ),
    (
        Rule::UnusedAllow,
        "meta: an allow annotation that suppressed nothing",
    ),
    (
        Rule::MalformedAllow,
        "meta: an autobal-lint marker that does not parse",
    ),
];

impl Rule {
    /// The identifier used inside `allow(...)` annotations and printed
    /// in diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::PanicSafety => "panic-safety",
            Rule::StrategyLocality => "strategy-locality",
            Rule::OutputDiscipline => "output-discipline",
            Rule::Layering => "layering",
            Rule::ErrorPath => "error-path",
            Rule::FloatOrder => "float-order",
            Rule::TelemetryVocab => "telemetry-vocab",
            Rule::UnusedAllow => "unused-allow",
            Rule::MalformedAllow => "malformed-allow",
        }
    }

    /// Parses an annotation rule identifier (suppressible rules only —
    /// the meta-diagnostics cannot be allowed away).
    pub fn from_id(s: &str) -> Option<Rule> {
        match s {
            "determinism" => Some(Rule::Determinism),
            "panic-safety" => Some(Rule::PanicSafety),
            "strategy-locality" => Some(Rule::StrategyLocality),
            "output-discipline" => Some(Rule::OutputDiscipline),
            "layering" => Some(Rule::Layering),
            "error-path" => Some(Rule::ErrorPath),
            "float-order" => Some(Rule::FloatOrder),
            "telemetry-vocab" => Some(Rule::TelemetryVocab),
            _ => None,
        }
    }

    /// Parses any rule identifier, meta-diagnostics included (for
    /// `--rule` filtering).
    pub fn from_id_any(s: &str) -> Option<Rule> {
        match s {
            "unused-allow" => Some(Rule::UnusedAllow),
            "malformed-allow" => Some(Rule::MalformedAllow),
            other => Rule::from_id(other),
        }
    }
}

/// One diagnostic: a rule violation at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: PathBuf,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// A parsed `allow(<rule>, "<reason>")` annotation comment.
#[derive(Debug, Clone)]
struct Allow {
    line: usize, // 1-indexed
    rule: Rule,
    /// No code tokens share this line: the annotation stands alone and
    /// therefore guards the *next* line.
    standalone: bool,
    /// The annotation sits inside a `#[cfg(test)]` region, where the
    /// rules do not apply — it can never suppress anything.
    in_test_code: bool,
    used: bool,
}

const MARKER: &str = "autobal-lint:";

/// Finds the annotation marker inside a *plain* line comment (`//`, not
/// `///` or `//!` — doc text may mention the syntax without being an
/// annotation). Returns the offset just past the marker.
fn marker_in_comment(line: &str) -> Option<usize> {
    let mut search = 0;
    while let Some(p) = line.get(search..).and_then(|s| s.find("//")) {
        let at = search + p;
        let after = line.get(at + 2..).and_then(|s| s.chars().next());
        if after != Some('/') && after != Some('!') {
            return line
                .get(at..)
                .and_then(|s| s.find(MARKER))
                .map(|m| at + m + MARKER.len());
        }
        search = at + 2;
    }
    None
}

/// Extracts allow annotations (and malformed-marker findings) from one
/// file's raw source. Annotations inside `#[cfg(test)]` regions are
/// kept but tagged: they are guaranteed-unused and reported as such.
fn parse_allows(file: &model::FileModel, raw: &str) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    let token_lines: std::collections::BTreeSet<usize> = file.toks.iter().map(|t| t.line).collect();
    for (idx, line) in raw.lines().enumerate() {
        let Some(pos) = marker_in_comment(line) else {
            continue;
        };
        let lineno = idx + 1;
        let rest = line.get(pos..).unwrap_or("").trim_start();
        let parsed = (|| -> Result<Rule, String> {
            let rest = rest
                .strip_prefix("allow(")
                .ok_or_else(|| "expected `allow(<rule>, \"<reason>\")`".to_string())?;
            let (rule_id, rest) = rest
                .split_once(',')
                .ok_or_else(|| "missing `, \"<reason>\"` after rule".to_string())?;
            let rule = Rule::from_id(rule_id.trim())
                .ok_or_else(|| format!("unknown rule `{}`", rule_id.trim()))?;
            let rest = rest.trim_start();
            let rest = rest
                .strip_prefix('"')
                .ok_or_else(|| "reason must be a quoted string".to_string())?;
            let (reason, rest) = rest
                .split_once('"')
                .ok_or_else(|| "unterminated reason string".to_string())?;
            if reason.trim().is_empty() {
                return Err("reason must not be empty".to_string());
            }
            if !rest.trim_start().starts_with(')') {
                return Err("missing closing `)`".to_string());
            }
            Ok(rule)
        })();
        let in_test_code = file.masked(lineno);
        match parsed {
            Ok(rule) => allows.push(Allow {
                line: lineno,
                rule,
                standalone: !token_lines.contains(&lineno),
                in_test_code,
                used: false,
            }),
            Err(why) if !in_test_code => bad.push(Finding {
                file: PathBuf::from(&file.rel),
                line: lineno,
                rule: Rule::MalformedAllow,
                message: format!("unparseable autobal-lint annotation: {why}"),
            }),
            Err(_) => {}
        }
    }
    (allows, bad)
}

/// Applies one file's allow annotations to its findings: each
/// annotation suppresses at most one finding of its rule on its own
/// line (or, standing alone, on the next line); leftovers become
/// `unused-allow` findings.
fn apply_allows(rel: &str, mut allows: Vec<Allow>, findings: Vec<Finding>) -> Vec<Finding> {
    let mut kept = Vec::new();
    for finding in findings {
        let slot = allows.iter_mut().find(|a| {
            !a.used
                && !a.in_test_code
                && a.rule == finding.rule
                && (a.line == finding.line || (a.standalone && a.line + 1 == finding.line))
        });
        match slot {
            Some(a) => a.used = true,
            None => kept.push(finding),
        }
    }
    for a in allows.iter().filter(|a| !a.used) {
        let message = if a.in_test_code {
            format!(
                "allow({}) sits inside #[cfg(test)] code, where the rules do not apply; \
                 remove the annotation",
                a.rule.id()
            )
        } else {
            format!(
                "allow({}) suppressed nothing; remove the annotation",
                a.rule.id()
            )
        };
        kept.push(Finding {
            file: PathBuf::from(rel),
            line: a.line,
            rule: Rule::UnusedAllow,
            message,
        });
    }
    kept
}

/// Scans a set of `(workspace-relative path, contents)` inputs as one
/// workspace. Non-`.rs` paths become model resources (the golden
/// schema fixture). This is the core entry point — `scan_source` and
/// `scan_workspace` are wrappers.
pub fn scan_files(inputs: &[(String, String)]) -> Vec<Finding> {
    let ws = model::Workspace::build(inputs);
    // Raw findings from every family.
    let mut raw: Vec<Finding> = Vec::new();
    for file in &ws.files {
        raw.extend(rules::check_file(&ws, file));
    }
    rules::check_layering(&ws, &mut raw);
    rules::check_telemetry(&ws, &mut raw);
    // Dedupe repeated hits of one (line, rule, message) — several
    // tokens on a line can trip the same check, but one annotation
    // must keep suppressing the whole line, as it always has.
    raw.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    raw.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.message == b.message
    });
    // Apply each file's allows to that file's findings.
    let mut out: Vec<Finding> = Vec::new();
    for (rel, text) in inputs {
        let Some(file) = ws.file(rel) else {
            continue;
        };
        let (allows, malformed) = parse_allows(file, text);
        let mine: Vec<Finding> = raw
            .iter()
            .filter(|f| f.file == Path::new(rel))
            .cloned()
            .collect();
        out.extend(apply_allows(rel, allows, mine));
        out.extend(malformed);
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Scans one file's source in isolation (no cross-file rules beyond
/// what the single file itself can trigger). `rel` is the
/// workspace-relative path used for scoping and diagnostics.
pub fn scan_source(rel: &str, src: &str) -> Vec<Finding> {
    scan_files(&[(rel.to_string(), src.to_string())])
}

/// Recursively collects `.rs` files under `dir`, sorted for stable
/// diagnostics.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The first-party source roots the analyzer walks, relative to the
/// workspace root. Integration tests, benches, fixtures, and the
/// vendored stand-ins are deliberately out of scope.
pub const SCAN_ROOTS: &[&str] = &[
    "src",
    "crates/bench/src",
    "crates/chord/src",
    "crates/core/src",
    "crates/experiments/src",
    "crates/id/src",
    "crates/lint/src",
    "crates/meminstr/src",
    "crates/metrics/src",
    "crates/stats/src",
    "crates/telemetry/src",
    "crates/viz/src",
    "crates/workload/src",
];

/// Non-Rust inputs rule T checks coverage against.
pub const RESOURCE_PATHS: &[&str] = &[
    "tests/data/golden_schema.jsonl",
    "tests/data/golden_metrics.jsonl",
];

/// Scans the whole workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        collect_rs(&root.join(sub), &mut files)?;
    }
    let mut inputs = Vec::new();
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        inputs.push((rel, src));
    }
    for res in RESOURCE_PATHS {
        let path = root.join(res);
        if path.is_file() {
            inputs.push((res.to_string(), std::fs::read_to_string(&path)?));
        }
    }
    Ok(scan_files(&inputs))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as the machine-readable JSON document CI consumes:
/// `{"findings": [{file, line, rule, message}, …], "count": N}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.file.display().to_string()),
            f.line,
            f.rule.id(),
            json_escape(&f.message)
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out.push('\n');
    out
}

/// Renders findings as GitHub Actions workflow commands, one per line,
/// so CI surfaces them as inline annotations on the PR diff.
pub fn render_github(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        // Workflow-command escaping: %, CR, LF in the message; plus
        // `,` and `:` in property values.
        let msg = f
            .message
            .replace('%', "%25")
            .replace('\r', "%0D")
            .replace('\n', "%0A");
        let file = f
            .file
            .display()
            .to_string()
            .replace('%', "%25")
            .replace(',', "%2C")
            .replace(':', "%3A");
        out.push_str(&format!(
            "::error file={},line={},title=autobal-lint [{}]::{}\n",
            file,
            f.line,
            f.rule.id(),
            msg
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for (rule, _) in RULES {
            assert_eq!(Rule::from_id_any(rule.id()), Some(*rule));
        }
        assert_eq!(
            Rule::from_id("unused-allow"),
            None,
            "meta rules are not allowable"
        );
        assert_eq!(Rule::from_id("layering"), Some(Rule::Layering));
    }

    #[test]
    fn scope_selection() {
        assert_eq!(
            rules_for("crates/chord/src/network.rs"),
            vec![
                Rule::Determinism,
                Rule::PanicSafety,
                Rule::OutputDiscipline,
                Rule::ErrorPath,
                Rule::FloatOrder
            ]
        );
        assert_eq!(
            rules_for("crates/core/src/strategy/random.rs"),
            vec![
                Rule::Determinism,
                Rule::StrategyLocality,
                Rule::OutputDiscipline,
                Rule::FloatOrder
            ]
        );
        assert_eq!(
            rules_for("crates/core/src/strategy/mod.rs"),
            vec![Rule::Determinism, Rule::OutputDiscipline, Rule::FloatOrder]
        );
        assert_eq!(rules_for("crates/viz/src/svg.rs"), vec![Rule::FloatOrder]);
        assert_eq!(
            rules_for("src/protocol_sim.rs"),
            vec![
                Rule::Determinism,
                Rule::OutputDiscipline,
                Rule::ErrorPath,
                Rule::FloatOrder
            ]
        );
        assert_eq!(
            rules_for("src/event_sim.rs"),
            vec![
                Rule::Determinism,
                Rule::PanicSafety,
                Rule::OutputDiscipline,
                Rule::ErrorPath,
                Rule::FloatOrder
            ]
        );
        assert_eq!(rules_for("tests/chaos.rs"), Vec::<Rule>::new());
    }

    #[test]
    fn token_stream_kills_string_false_positives() {
        // The v1 line scanner needed strip_code for these; the lexer
        // handles them structurally.
        let clean = scan_source(
            "crates/core/src/x.rs",
            "fn f() { let s = \"HashMap thread_rng Instant\"; let c = 'H'; }\n",
        );
        assert_eq!(clean, Vec::new());
        let dirty = scan_source("crates/core/src/x.rs", "use std::collections::HashMap;\n");
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty.first().map(|f| f.rule), Some(Rule::Determinism));
    }

    #[test]
    fn multiline_method_calls_are_seen() {
        // `.unwrap()` split across lines defeated the line scanner.
        let src = "fn f(x: Option<u8>) -> u8 {\n    x\n        .unwrap()\n}\n";
        let got = scan_source("crates/chord/src/network.rs", src);
        assert!(
            got.iter()
                .any(|f| f.rule == Rule::PanicSafety && f.line == 3),
            "{got:?}"
        );
    }

    #[test]
    fn allow_in_test_code_is_reported_unused() {
        let src = "fn ok() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       // autobal-lint: allow(determinism, \"tests are exempt anyway\")\n\
                       fn t() { let _ = std::collections::HashMap::<u8, u8>::new(); }\n\
                   }\n";
        let got = scan_source("crates/core/src/x.rs", src);
        assert_eq!(got.len(), 1, "{got:?}");
        let f = got.first().expect("one finding");
        assert_eq!((f.line, f.rule), (4, Rule::UnusedAllow));
        assert!(f.message.contains("cfg(test)"), "{}", f.message);
    }

    #[test]
    fn json_and_github_rendering() {
        let findings = vec![Finding {
            file: PathBuf::from("src/a.rs"),
            line: 3,
            rule: Rule::Layering,
            message: "crate `a` may not import \"b\"".to_string(),
        }];
        let json = render_json(&findings);
        assert!(json.contains("\"rule\":\"layering\""));
        assert!(json.contains("\\\"b\\\""));
        assert!(json.ends_with("\"count\":1}\n"));
        assert_eq!(render_json(&[]), "{\"findings\":[],\"count\":0}\n");
        let gh = render_github(&findings);
        assert!(gh.starts_with("::error file=src/a.rs,line=3,"));
    }

    #[test]
    fn two_violations_one_line_need_two_allows_only_if_distinct() {
        // Two unwraps on one line are one deduped finding (one line,
        // one rule, one message) — a single annotation covers them.
        let src = "// autobal-lint: allow(panic-safety, \"test of dedupe\")\n\
                   fn f(a: Option<u8>, b: Option<u8>) { a.unwrap(); b.unwrap(); }\n";
        let got = scan_source("crates/chord/src/fault.rs", src);
        assert_eq!(got, Vec::new(), "{got:?}");
    }
}
