//! The eight rule families, implemented over the lexed/parsed
//! workspace model.
//!
//! Per-file rules (D, P, S, O, E, F) run on one [`FileModel`] at a
//! time; workspace rules (L, T) need the whole [`Workspace`] — the
//! import graph for layering, the telemetry enums plus their coverage
//! anchors for vocabulary sync. Every check is a linear token walk;
//! none of them index a slice or unwrap (the crate passes its own
//! panic-safety rule).

use crate::lexer::TokKind;
use crate::model::{allowed_imports, find_cycle, ident_to_crate, FileModel, Workspace};
use crate::parser::matching;
use crate::{Finding, Rule};
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Files whose basename puts them in rule E's error-path scope: the
/// delivery, retry, fault, and adversary machinery where a silently
/// dropped `Result` undoes the graceful-degradation guarantees.
const ERROR_PATH_FILES: &[&str] = &[
    "network.rs",
    "eventnet.rs",
    "fault.rs",
    "adversary.rs",
    "protocol_sim.rs",
    "event_sim.rs",
];

/// Keywords that may directly precede a `[` without it being an index
/// expression (`for x in [..]`, `return [..]`, `let [a, b] = ..`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "break", "continue", "else", "in", "let", "match", "mut", "ref", "return", "static",
    "true", "false", "yield", "move", "box", "dyn", "while", "if",
];

/// Which rule families apply to a workspace-relative path (forward
/// slashes, no leading `./`). L and T are workspace-level and are not
/// listed here; their findings are still filterable by rule id.
pub fn rules_for(rel: &str) -> Vec<Rule> {
    let mut rules = Vec::new();
    let in_determinism_scope = rel.starts_with("crates/core/src/")
        || rel.starts_with("crates/chord/src/")
        || rel.starts_with("crates/workload/src/")
        || rel.starts_with("crates/experiments/src/")
        || rel.starts_with("src/");
    if in_determinism_scope {
        rules.push(Rule::Determinism);
    }
    if matches!(
        rel,
        "crates/chord/src/network.rs"
            | "crates/chord/src/eventnet.rs"
            | "crates/chord/src/fault.rs"
            | "crates/chord/src/adversary.rs"
            | "crates/core/src/shard.rs"
            | "src/event_sim.rs"
    ) {
        rules.push(Rule::PanicSafety);
    }
    // `mod.rs` *defines* the strategy surface (including `OracleView`),
    // so only the concrete strategy modules are held to locality.
    if rel.starts_with("crates/core/src/strategy/") && !rel.ends_with("/mod.rs") {
        rules.push(Rule::StrategyLocality);
    }
    // Library crates never print; `autobal-experiments` and the lint
    // binary itself are reporting tools, out of scope by design. The
    // CLI mains live inside these trees and carry audited exemptions.
    let in_output_scope = rel.starts_with("crates/core/src/")
        || rel.starts_with("crates/chord/src/")
        || rel.starts_with("crates/workload/src/")
        || rel.starts_with("crates/telemetry/src/")
        || rel.starts_with("crates/metrics/src/")
        || rel.starts_with("src/");
    if in_output_scope {
        rules.push(Rule::OutputDiscipline);
    }
    let base = rel.rsplit('/').next().unwrap_or(rel);
    if ERROR_PATH_FILES.contains(&base) && crate::model::crate_of(rel).is_some() {
        rules.push(Rule::ErrorPath);
    }
    // Float-order determinism applies to every attributed first-party
    // file: the checks are narrow enough to be workspace-wide.
    if crate::model::crate_of(rel).is_some() {
        rules.push(Rule::FloatOrder);
    }
    rules
}

fn push(out: &mut Vec<Finding>, rel: &str, line: usize, rule: Rule, message: String) {
    out.push(Finding {
        file: PathBuf::from(rel),
        line,
        rule,
        message,
    });
}

/// Runs every per-file rule family `rules_for` activates on `file`.
pub fn check_file(ws: &Workspace, file: &FileModel) -> Vec<Finding> {
    let active = rules_for(&file.rel);
    let mut out = Vec::new();
    if active.contains(&Rule::Determinism) {
        determinism(file, &mut out);
    }
    if active.contains(&Rule::PanicSafety) {
        panic_safety(file, &mut out);
    }
    if active.contains(&Rule::StrategyLocality) {
        strategy_locality(file, &mut out);
    }
    if active.contains(&Rule::OutputDiscipline) {
        output_discipline(file, &mut out);
    }
    if active.contains(&Rule::ErrorPath) {
        error_path(ws, file, &mut out);
    }
    if active.contains(&Rule::FloatOrder) {
        float_order(file, &mut out);
    }
    out
}

/// D — determinism: no ambient randomness, wall-clock, or unordered
/// containers in decision paths.
fn determinism(file: &FileModel, out: &mut Vec<Finding>) {
    const WORDS: &[(&str, &str)] = &[
        (
            "thread_rng",
            "thread_rng is nondeterministic; draw from a seeded ChaCha stream",
        ),
        (
            "from_entropy",
            "entropy-seeded RNG is nondeterministic; use seed_from_u64 on a pinned seed",
        ),
        (
            "SystemTime",
            "wall-clock time in a deterministic path; use the simulated clock",
        ),
        (
            "Instant",
            "wall-clock time in a deterministic path; use the simulated clock",
        ),
        (
            "HashMap",
            "HashMap iteration order is unstable; use BTreeMap or explicitly sorted iteration",
        ),
        (
            "HashSet",
            "HashSet iteration order is unstable; use BTreeSet or explicitly sorted iteration",
        ),
    ];
    for tok in &file.toks {
        if tok.kind != TokKind::Ident || file.masked(tok.line) {
            continue;
        }
        for (word, msg) in WORDS {
            if tok.text == *word {
                push(out, &file.rel, tok.line, Rule::Determinism, msg.to_string());
            }
        }
    }
}

/// P — panic-safety: no `unwrap`/`expect`/`panic!`/indexing in the
/// message-delivery and retry paths.
fn panic_safety(file: &FileModel, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for (i, tok) in toks.iter().enumerate() {
        if file.masked(tok.line) {
            continue;
        }
        if tok.is_punct(".") {
            if let Some(next) = toks.get(i + 1) {
                if next.is_ident("unwrap") {
                    push(
                        out,
                        &file.rel,
                        next.line,
                        Rule::PanicSafety,
                        "unwrap() in a message-delivery/retry path; return an error or degrade"
                            .to_string(),
                    );
                }
                if next.is_ident("expect") {
                    push(
                        out,
                        &file.rel,
                        next.line,
                        Rule::PanicSafety,
                        "expect() in a message-delivery/retry path; return an error or degrade"
                            .to_string(),
                    );
                }
            }
        }
        if tok.kind == TokKind::Ident
            && (tok.text == "panic" || tok.text == "unreachable")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            push(
                out,
                &file.rel,
                tok.line,
                Rule::PanicSafety,
                format!(
                    "{}! in a message-delivery/retry path; return an error or degrade",
                    tok.text
                ),
            );
        }
        if tok.is_punct("[") {
            let indexes = match i.checked_sub(1).and_then(|p| toks.get(p)) {
                Some(prev) => match prev.kind {
                    TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                    TokKind::Num => true,
                    TokKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
                    _ => false,
                },
                None => false,
            };
            if indexes {
                push(
                    out,
                    &file.rel,
                    tok.line,
                    Rule::PanicSafety,
                    "slice/map indexing can panic under faults; use get()/get_mut()".to_string(),
                );
            }
        }
    }
}

/// S — strategy locality: strategy modules see only the
/// `LocalView`/`Actions`/`Substrate` surface, verified on the real
/// token stream (so `use` trees, fully-qualified paths, and type
/// references all count).
fn strategy_locality(file: &FileModel, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident || file.masked(tok.line) {
            continue;
        }
        if tok.text == "autobal_chord" {
            push(
                out,
                &file.rel,
                tok.line,
                Rule::StrategyLocality,
                "strategy reaches into Chord internals; strategies see only LocalView/Actions"
                    .to_string(),
            );
            continue;
        }
        // Any other first-party crate except the shared id arithmetic.
        if tok.text != "autobal_id" && ident_to_crate(&tok.text).is_some() {
            push(
                out,
                &file.rel,
                tok.line,
                Rule::StrategyLocality,
                format!(
                    "strategy imports `{}`; strategies see only LocalView/Actions",
                    tok.text
                ),
            );
            continue;
        }
        if tok.text == "OracleView" {
            push(
                out,
                &file.rel,
                tok.line,
                Rule::StrategyLocality,
                "OracleView is the omniscient surface; decentralized strategies must not see it"
                    .to_string(),
            );
            continue;
        }
        if tok.text == "crate" && toks.get(i + 1).is_some_and(|n| n.is_punct("::")) {
            let msg = match toks.get(i + 2).map(|n| n.text.as_str()) {
                Some("sim") => Some(
                    "strategy touches the global simulator; strategies see only LocalView/Actions",
                ),
                Some("ring") => Some(
                    "strategy touches global ring state; strategies see only LocalView/Actions",
                ),
                Some("trace") | Some("metrics") => {
                    Some("strategy touches global observability state; use the Actions surface")
                }
                _ => None,
            };
            if let Some(msg) = msg {
                push(
                    out,
                    &file.rel,
                    tok.line,
                    Rule::StrategyLocality,
                    msg.to_string(),
                );
            }
        }
    }
}

/// O — output discipline: no direct stdout/stderr writes in library
/// code. A macro invocation is an ident followed by `!`, so a function
/// merely *named* `print` no longer trips the rule.
fn output_discipline(file: &FileModel, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident || file.masked(tok.line) {
            continue;
        }
        if !matches!(
            tok.text.as_str(),
            "println" | "eprintln" | "print" | "eprint"
        ) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            continue;
        }
        push(
            out,
            &file.rel,
            tok.line,
            Rule::OutputDiscipline,
            format!(
                "{}! in library code; record telemetry or return the text instead",
                tok.text
            ),
        );
    }
}

/// E — error-path discipline: no silent `Result` discards and no
/// wildcard arms in error matches on the delivery/retry/fault paths.
fn error_path(ws: &Workspace, file: &FileModel, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    let fallible = ws.fallible_fns();
    for (i, tok) in toks.iter().enumerate() {
        if file.masked(tok.line) {
            continue;
        }
        // E1: `let _ = …;` — a value thrown away wholesale.
        if tok.is_ident("let")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("_"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("="))
        {
            // Name the discarded fallible call when the workspace
            // declares one in the statement.
            let mut callee = None;
            let mut j = i + 3;
            while let Some(t) = toks.get(j) {
                if t.is_punct(";") {
                    break;
                }
                if t.kind == TokKind::Ident
                    && fallible.contains(&t.text)
                    && toks.get(j + 1).is_some_and(|n| n.is_punct("("))
                {
                    callee = Some(t.text.clone());
                    break;
                }
                j += 1;
            }
            let message = match callee {
                Some(name) => format!(
                    "`let _ =` silently discards the Result of fallible `{name}()`; \
                     handle the error or audit the discard"
                ),
                None => "`let _ =` discards a value on an error-handling path; \
                         bind and handle it or audit the discard"
                    .to_string(),
            };
            push(out, &file.rel, tok.line, Rule::ErrorPath, message);
        }
        // E2: a trailing `.ok();` — a Result converted away and dropped.
        if tok.is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("ok"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(")"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct(";"))
        {
            push(
                out,
                &file.rel,
                tok.line,
                Rule::ErrorPath,
                ".ok() drops a Result on an error-handling path; handle the error or audit \
                 the discard"
                    .to_string(),
            );
        }
        // E3: wildcard arms inside matches that involve the error
        // enums — a new error variant must not vanish into `_`.
        if tok.is_ident("match") {
            wildcard_error_arms(file, i, out);
        }
    }
}

/// Scans the body of the `match` whose keyword sits at token index
/// `kw` for `_ =>` / `Err(_) =>` arms, when that body mentions
/// `ActionError` or `NetworkError`.
fn wildcard_error_arms(file: &FileModel, kw: usize, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    // Find the body's opening brace, skipping parenthesized/bracketed
    // scrutinee groups.
    let mut j = kw + 1;
    let open = loop {
        match toks.get(j) {
            None => return,
            Some(t) if t.is_punct("(") || t.is_punct("[") => {
                j = match matching(toks, j) {
                    Some(close) => close + 1,
                    None => return,
                };
            }
            Some(t) if t.is_punct("{") => break j,
            Some(t) if t.is_punct(";") => return,
            Some(_) => j += 1,
        }
    };
    let Some(close) = matching(toks, open) else {
        return;
    };
    let body = toks.get(open..=close).unwrap_or(&[]);
    let involves_errors = body
        .iter()
        .any(|t| t.is_ident("ActionError") || t.is_ident("NetworkError"));
    if !involves_errors {
        return;
    }
    for (k, t) in body.iter().enumerate() {
        if file.masked(t.line) {
            continue;
        }
        let bare_wildcard = t.is_ident("_") && body.get(k + 1).is_some_and(|n| n.is_punct("=>"));
        let err_wildcard = t.is_ident("Err")
            && body.get(k + 1).is_some_and(|n| n.is_punct("("))
            && body.get(k + 2).is_some_and(|n| n.is_ident("_"))
            && body.get(k + 3).is_some_and(|n| n.is_punct(")"))
            && body.get(k + 4).is_some_and(|n| n.is_punct("=>"));
        if bare_wildcard || err_wildcard {
            push(
                out,
                &file.rel,
                t.line,
                Rule::ErrorPath,
                "wildcard arm in a match involving ActionError/NetworkError hides new error \
                 variants; enumerate them explicitly"
                    .to_string(),
            );
        }
    }
}

/// F — float-order determinism: reductions whose order the rayon
/// scheduler picks, and float comparators built on `partial_cmp`.
fn float_order(file: &FileModel, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    let mut par_in_stmt = false;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind == TokKind::Punct && matches!(tok.text.as_str(), ";" | "{" | "}") {
            par_in_stmt = false;
            continue;
        }
        if tok.kind != TokKind::Ident || file.masked(tok.line) {
            continue;
        }
        // F1: a `sum`/`fold`/`reduce` downstream of a parallel iterator
        // in the same statement — the reduction tree shape (and thus
        // f64 rounding) depends on the thread schedule.
        if matches!(
            tok.text.as_str(),
            "par_iter" | "into_par_iter" | "par_iter_mut" | "par_chunks" | "par_bridge"
        ) {
            par_in_stmt = true;
        }
        if par_in_stmt
            && matches!(tok.text.as_str(), "sum" | "fold" | "reduce")
            && i.checked_sub(1)
                .and_then(|p| toks.get(p))
                .is_some_and(|p| p.is_punct("."))
        {
            par_in_stmt = false;
            push(
                out,
                &file.rel,
                tok.line,
                Rule::FloatOrder,
                format!(
                    "{}() over a rayon parallel iterator reduces in schedule order; \
                     f64 accumulation there is nondeterministic — collect then reduce \
                     serially, or audit",
                    tok.text
                ),
            );
        }
        // F2: `partial_cmp` in comparator position (a `fn partial_cmp`
        // definition — the PartialOrd impl itself — is not a use site).
        if tok.text == "partial_cmp"
            && !i
                .checked_sub(1)
                .and_then(|p| toks.get(p))
                .is_some_and(|p| p.is_ident("fn"))
        {
            push(
                out,
                &file.rel,
                tok.line,
                Rule::FloatOrder,
                "partial_cmp as an ordering key is not total (NaN) and invites \
                 expect()-on-float; use f64::total_cmp"
                    .to_string(),
            );
        }
    }
}

/// L — layering: every observed cross-crate import must be an edge the
/// pinned layer DAG allows, and the observed graph must be acyclic.
pub fn check_layering(ws: &Workspace, out: &mut Vec<Finding>) {
    let edges = ws.import_edges();
    for e in &edges {
        let Some(allowed) = allowed_imports(&e.from) else {
            continue; // unknown crate: nothing pinned to check against
        };
        if !allowed.iter().any(|a| *a == e.to) {
            let allow_list = if allowed.is_empty() {
                "nothing first-party".to_string()
            } else {
                allowed.join(", ")
            };
            push(
                out,
                &e.file,
                e.line,
                Rule::Layering,
                format!(
                    "crate `{}` may not import `{}`; the layer DAG allows it {}",
                    e.from, e.to, allow_list
                ),
            );
        }
    }
    // Belt and braces: even a table regression must not let a cycle by.
    let crate_edges: BTreeSet<(String, String)> = edges
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();
    let crate_edges: Vec<(String, String)> = crate_edges.into_iter().collect();
    if let Some(cycle) = find_cycle(&crate_edges) {
        let on_cycle = edges.iter().find(|e| {
            cycle.first().is_some_and(|a| *a == e.from) && cycle.get(1).is_some_and(|b| *b == e.to)
        });
        if let Some(e) = on_cycle {
            push(
                out,
                &e.file,
                e.line,
                Rule::Layering,
                format!("crate dependency cycle: {}", cycle.join(" -> ")),
            );
        }
    }
}

/// True when some file constructs `Enum::Variant { … }` outside test
/// code — braces without `..`, which in this tree distinguishes a
/// construction from a pattern (patterns always elide fields).
fn has_struct_construction(ws: &Workspace, enum_name: &str, variant: &str) -> bool {
    for file in &ws.files {
        let toks = &file.toks;
        for (i, tok) in toks.iter().enumerate() {
            if !tok.is_ident(enum_name) || file.masked(tok.line) {
                continue;
            }
            if !(toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident(variant)))
            {
                continue;
            }
            if !toks.get(i + 3).is_some_and(|t| t.is_punct("{")) {
                continue;
            }
            let Some(close) = matching(toks, i + 3) else {
                continue;
            };
            let elided = toks
                .get(i + 3..=close)
                .unwrap_or(&[])
                .iter()
                .any(|t| t.is_punct(".."));
            if !elided {
                return true;
            }
        }
    }
    false
}

/// True when some file uses the unit path `Enum::Variant` as a value
/// (not a `=>`-guarded pattern), outside test code.
fn has_unit_emission(ws: &Workspace, enum_name: &str, variant: &str, skip_rel: &str) -> bool {
    for file in &ws.files {
        if file.rel == skip_rel {
            continue;
        }
        let toks = &file.toks;
        for (i, tok) in toks.iter().enumerate() {
            if !tok.is_ident(enum_name) || file.masked(tok.line) {
                continue;
            }
            if !(toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident(variant)))
            {
                continue;
            }
            // A pattern position is followed by `=>` (or `|` chaining
            // to another pattern); anything else is an expression.
            match toks.get(i + 3) {
                Some(t) if t.is_punct("=>") || t.is_punct("|") => continue,
                _ => return true,
            }
        }
    }
    false
}

fn file_has_ident(file: &FileModel, name: &str) -> bool {
    file.toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == name)
}

fn file_has_str(file: &FileModel, content: &str) -> bool {
    file.toks
        .iter()
        .any(|t| t.kind == TokKind::Str && t.text == content)
}

/// The decision-name vocabulary: string literals returned by
/// `SimEvent::decision_fields`, filtered to snake_case words (format
/// strings and hex payloads are not names).
fn decision_names(file: &FileModel) -> Vec<(usize, String)> {
    let mut names = Vec::new();
    for f in &file.items.fns {
        if f.name != "decision_fields" {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        for tok in file.toks.get(open..=close).unwrap_or(&[]) {
            if tok.kind != TokKind::Str {
                continue;
            }
            let is_name = !tok.text.is_empty()
                && tok
                    .text
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
            if is_name {
                names.push((tok.line, tok.text.clone()));
            }
        }
    }
    names
}

/// The metric-name vocabulary: `pub const NAME: &str = "name";`
/// declarations in `crates/metrics/src/names.rs`, token-matched so the
/// registry table (`ALL`, whose entries are tuples, not bare string
/// consts) is not swept in.
fn metric_name_consts(file: &FileModel) -> Vec<(usize, String, String)> {
    let mut out = Vec::new();
    for w in file.toks.windows(8) {
        let [kw, ident, colon, amp, ty, eq, lit, semi] = w else {
            continue;
        };
        let shape = kw.kind == TokKind::Ident
            && kw.text == "const"
            && ident.kind == TokKind::Ident
            && colon.text == ":"
            && amp.text == "&"
            && ty.text == "str"
            && eq.text == "="
            && lit.kind == TokKind::Str
            && semi.text == ";";
        if shape && !file.masked(kw.line) {
            out.push((ident.line, ident.text.clone(), lit.text.clone()));
        }
    }
    out
}

/// T — telemetry-vocabulary sync: every `SimEvent` variant has an emit
/// site, every decision name and `MessageStatus` is covered by the
/// golden-schema fixture, the `TraceBody`/`MessageStatus` enums are
/// fully handled by the trace summary and the validate schema, and the
/// metric-name vocabulary stays closed (snake_case, in the registry
/// table, in the golden metrics fixture, and actually emitted).
pub fn check_telemetry(ws: &Workspace, out: &mut Vec<Finding>) {
    let schema = ws
        .resources
        .iter()
        .find(|(path, _)| path.ends_with("golden_schema.jsonl"));
    let summary = ws.file("crates/telemetry/src/summary.rs");
    let jsonl = ws.file("crates/telemetry/src/jsonl.rs");

    if let Some((evfile, ev)) = ws.find_enum("SimEvent") {
        for v in &ev.variants {
            if !has_struct_construction(ws, "SimEvent", &v.name) {
                push(
                    out,
                    &evfile.rel,
                    v.line,
                    Rule::TelemetryVocab,
                    format!(
                        "SimEvent::{} has no emit site; every event variant must be \
                         constructed by at least one substrate",
                        v.name
                    ),
                );
            }
        }
        match schema {
            None => push(
                out,
                &evfile.rel,
                ev.line,
                Rule::TelemetryVocab,
                "telemetry vocabulary has no golden-schema fixture \
                 (tests/data/golden_schema.jsonl)"
                    .to_string(),
            ),
            Some((_, text)) => {
                for (line, name) in decision_names(evfile) {
                    if !text.contains(&format!("\"{name}\"")) {
                        push(
                            out,
                            &evfile.rel,
                            line,
                            Rule::TelemetryVocab,
                            format!(
                                "decision name \"{name}\" is not covered by the \
                                 golden-schema fixture"
                            ),
                        );
                    }
                }
            }
        }
    }

    if let Some((tbfile, tb)) = ws.find_enum("TraceBody") {
        for v in &tb.variants {
            if let Some(s) = summary {
                if !file_has_ident(s, &v.name) {
                    push(
                        out,
                        &tbfile.rel,
                        v.line,
                        Rule::TelemetryVocab,
                        format!("TraceBody::{} is not handled by the trace summary", v.name),
                    );
                }
            }
            if let Some(j) = jsonl {
                if !(file_has_str(j, &v.name) || file_has_ident(j, &v.name)) {
                    push(
                        out,
                        &tbfile.rel,
                        v.line,
                        Rule::TelemetryVocab,
                        format!(
                            "TraceBody::{} is not admitted by the validate schema",
                            v.name
                        ),
                    );
                }
            }
        }
    }

    if let Some((msfile, ms)) = ws.find_enum("MessageStatus") {
        for v in &ms.variants {
            if !has_unit_emission(ws, "MessageStatus", &v.name, &msfile.rel) {
                push(
                    out,
                    &msfile.rel,
                    v.line,
                    Rule::TelemetryVocab,
                    format!(
                        "MessageStatus::{} has no emit site outside its declaration",
                        v.name
                    ),
                );
            }
            if let Some(s) = summary {
                if !file_has_ident(s, &v.name) {
                    push(
                        out,
                        &msfile.rel,
                        v.line,
                        Rule::TelemetryVocab,
                        format!(
                            "MessageStatus::{} is not counted by the trace summary",
                            v.name
                        ),
                    );
                }
            }
            if let Some(j) = jsonl {
                if !(file_has_str(j, &v.name) || file_has_ident(j, &v.name)) {
                    push(
                        out,
                        &msfile.rel,
                        v.line,
                        Rule::TelemetryVocab,
                        format!(
                            "MessageStatus::{} is not admitted by the validate schema",
                            v.name
                        ),
                    );
                }
            }
            if let Some((_, text)) = schema {
                if !text.contains(&format!("\"{}\"", v.name)) {
                    push(
                        out,
                        &msfile.rel,
                        v.line,
                        Rule::TelemetryVocab,
                        format!(
                            "MessageStatus::{} is not covered by the golden-schema fixture",
                            v.name
                        ),
                    );
                }
            }
        }
    }

    let metrics_fixture = ws
        .resources
        .iter()
        .find(|(path, _)| path.ends_with("golden_metrics.jsonl"));
    if let Some(names) = ws.file("crates/metrics/src/names.rs") {
        let consts = metric_name_consts(names);
        if !consts.is_empty() && metrics_fixture.is_none() {
            push(
                out,
                &names.rel,
                1,
                Rule::TelemetryVocab,
                "metric vocabulary has no golden metrics fixture \
                 (tests/data/golden_metrics.jsonl)"
                    .to_string(),
            );
        }
        for (line, ident, name) in &consts {
            let well_formed = name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                && name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
            if !well_formed {
                push(
                    out,
                    &names.rel,
                    *line,
                    Rule::TelemetryVocab,
                    format!("metric name \"{name}\" is not snake_case"),
                );
            }
            // The declaration is one use; the registry table entry in
            // `ALL` is the second. A const never mentioned again is
            // declared but unregistered.
            let decl_file_uses = names
                .toks
                .iter()
                .filter(|t| t.kind == TokKind::Ident && t.text == *ident && !names.masked(t.line))
                .count();
            if decl_file_uses < 2 {
                push(
                    out,
                    &names.rel,
                    *line,
                    Rule::TelemetryVocab,
                    format!("metric `{ident}` is not enumerated in the registry table `ALL`"),
                );
            }
            if let Some((_, text)) = metrics_fixture {
                if !text.contains(&format!("\"{name}\"")) {
                    push(
                        out,
                        &names.rel,
                        *line,
                        Rule::TelemetryVocab,
                        format!("metric \"{name}\" is not covered by the golden metrics fixture"),
                    );
                }
            }
            // Emit site: some other first-party file references the
            // const, or emits the name literally (event counters reuse
            // the decision-name literals of `decision_fields`).
            let emitted = ws.files.iter().any(|f| {
                f.rel != names.rel
                    && f.toks.iter().any(|t| {
                        !f.masked(t.line)
                            && ((t.kind == TokKind::Ident && t.text == *ident)
                                || (t.kind == TokKind::Str && t.text == *name))
                    })
            });
            if !emitted {
                push(
                    out,
                    &names.rel,
                    *line,
                    Rule::TelemetryVocab,
                    format!("metric \"{name}\" has no emit site outside its declaration"),
                );
            }
        }
    }
}
