//! A small dependency-free Rust lexer.
//!
//! Produces a flat token stream with line numbers preserved — the
//! substrate every rule family operates on. Comments disappear from
//! the stream entirely (annotation comments are re-read from the raw
//! lines by the allow-audit machinery), string and char literals
//! become single tokens carrying their content, and the usual lexical
//! traps are handled: nested block comments, raw (and byte) strings
//! with any number of `#`s, escapes, and the char-literal vs. lifetime
//! ambiguity. This is what kills the false-positive classes of the old
//! line scanner — a `HashMap` inside a string or a `.unwrap()` split
//! across lines cannot confuse a token stream.
//!
//! The lexer is deliberately not a validator: malformed input degrades
//! to best-effort tokens, never a panic (the lint holds itself to its
//! own panic-safety rule).

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `_`).
    Ident,
    /// Lifetime (`'a`, `'static`), without the quote.
    Lifetime,
    /// String literal (normal, raw, byte); `text` is the content
    /// without quotes/hashes, escapes left undecoded.
    Str,
    /// Char literal; `text` is the content without quotes.
    Char,
    /// Numeric literal (`text` keeps the exact spelling, so `1.5`
    /// and `1e-3` are recognizably floats).
    Num,
    /// Punctuation. Multi-char operators that matter to the rules are
    /// fused: `::`, `=>`, `->`, `..=`, `..`; everything else is one
    /// char per token.
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-indexed source line of the token's first character.
    pub line: usize,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a punctuation token with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

fn ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Cursor over the source characters; all access is bounds-checked so
/// a truncated file cannot panic the lexer.
struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: usize,
}

impl Cursor {
    fn at(&self, off: usize) -> Option<char> {
        self.chars.get(self.i + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(ch) = c {
            if ch == '\n' {
                self.line += 1;
            }
            self.i += 1;
        }
        c
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

/// Lexes `src` into a token stream. Never fails: unknown bytes become
/// single-char `Punct` tokens.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
    };
    let mut toks: Vec<Tok> = Vec::new();
    while let Some(c) = cur.at(0) {
        let line = cur.line;
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Line comments (//, ///, //!): skip to end of line.
        if c == '/' && cur.at(1) == Some('/') {
            while let Some(ch) = cur.at(0) {
                if ch == '\n' {
                    break;
                }
                cur.bump();
            }
            continue;
        }
        // Block comments, nested.
        if c == '/' && cur.at(1) == Some('*') {
            cur.bump_n(2);
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.at(0), cur.at(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump_n(2);
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump_n(2);
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            continue;
        }
        // Raw / byte / raw-byte strings: r"..", r#".."#, br".., b"..".
        if (c == 'r' || c == 'b') && !prev_is_ident(&toks, &cur) {
            if let Some(tok) = lex_raw_or_byte_string(&mut cur) {
                toks.push(tok);
                continue;
            }
        }
        // Plain strings.
        if c == '"' {
            toks.push(lex_string(&mut cur));
            continue;
        }
        // Char literal vs. lifetime.
        if c == '\'' {
            toks.push(lex_char_or_lifetime(&mut cur));
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            toks.push(lex_number(&mut cur));
            continue;
        }
        // Identifiers / keywords (including raw identifiers r#name,
        // which reach here only via the raw-string probe failing).
        if ident_start(c) {
            let mut text = String::new();
            while let Some(ch) = cur.at(0) {
                if !ident_char(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            continue;
        }
        // Fused multi-char punctuation the rules care about.
        let fused = match (c, cur.at(1), cur.at(2)) {
            (':', Some(':'), _) => Some("::"),
            ('=', Some('>'), _) => Some("=>"),
            ('-', Some('>'), _) => Some("->"),
            ('.', Some('.'), Some('=')) => Some("..="),
            ('.', Some('.'), _) => Some(".."),
            _ => None,
        };
        if let Some(op) = fused {
            cur.bump_n(op.chars().count());
            toks.push(Tok {
                kind: TokKind::Punct,
                text: op.to_string(),
                line,
            });
            continue;
        }
        cur.bump();
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
    }
    toks
}

/// True when the character before the cursor belongs to an identifier —
/// then a leading `r`/`b` is the tail of that identifier, not a string
/// prefix. (The previous token check is not enough: `br` is two chars.)
fn prev_is_ident(_toks: &[Tok], cur: &Cursor) -> bool {
    cur.i
        .checked_sub(1)
        .and_then(|p| cur.chars.get(p).copied())
        .is_some_and(ident_char)
}

/// Tries to lex `r".."`/`r#".."#`/`b".."`/`br#".."#` at the cursor.
/// Returns `None` (consuming nothing) when this is not a string start.
fn lex_raw_or_byte_string(cur: &mut Cursor) -> Option<Tok> {
    let line = cur.line;
    let mut off = 0usize;
    if cur.at(off) == Some('b') {
        off += 1;
    }
    let raw = cur.at(off) == Some('r');
    if raw {
        off += 1;
    }
    let mut hashes = 0usize;
    if raw {
        while cur.at(off) == Some('#') {
            hashes += 1;
            off += 1;
        }
    }
    if cur.at(off) != Some('"') {
        return None;
    }
    if !raw && hashes > 0 {
        return None;
    }
    cur.bump_n(off + 1);
    let mut text = String::new();
    if raw {
        loop {
            match cur.at(0) {
                None => break,
                Some('"') => {
                    let closes = (1..=hashes).all(|k| cur.at(k) == Some('#'));
                    if closes {
                        cur.bump_n(1 + hashes);
                        break;
                    }
                    text.push('"');
                    cur.bump();
                }
                Some(ch) => {
                    text.push(ch);
                    cur.bump();
                }
            }
        }
    } else {
        consume_escaped_until(cur, &mut text, '"');
    }
    Some(Tok {
        kind: TokKind::Str,
        text,
        line,
    })
}

fn lex_string(cur: &mut Cursor) -> Tok {
    let line = cur.line;
    cur.bump(); // opening quote
    let mut text = String::new();
    consume_escaped_until(cur, &mut text, '"');
    Tok {
        kind: TokKind::Str,
        text,
        line,
    }
}

/// Consumes up to and including an unescaped `close`, appending the
/// content (escapes kept verbatim) to `text`.
fn consume_escaped_until(cur: &mut Cursor, text: &mut String, close: char) {
    loop {
        match cur.at(0) {
            None => break,
            Some('\\') => {
                text.push('\\');
                cur.bump();
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            Some(ch) if ch == close => {
                cur.bump();
                break;
            }
            Some(ch) => {
                text.push(ch);
                cur.bump();
            }
        }
    }
}

fn lex_char_or_lifetime(cur: &mut Cursor) -> Tok {
    let line = cur.line;
    // 'x' / '\n' are char literals; 'a (no closing quote in reach) is
    // a lifetime. A lifetime label is ident chars only, so seeing a
    // closing quote right after one-or-more ident chars decides it.
    if cur.at(1) == Some('\\') {
        cur.bump(); // quote
        let mut text = String::new();
        consume_escaped_until(cur, &mut text, '\'');
        return Tok {
            kind: TokKind::Char,
            text,
            line,
        };
    }
    // Non-escape: char literal iff the char after next is the closing
    // quote (covers 'x'; multi-char like 'ab' is not valid Rust).
    if cur.at(2) == Some('\'') && cur.at(1) != Some('\'') {
        cur.bump();
        let text = cur.bump().map(String::from).unwrap_or_default();
        cur.bump();
        return Tok {
            kind: TokKind::Char,
            text,
            line,
        };
    }
    // Lifetime.
    cur.bump(); // quote
    let mut text = String::new();
    while let Some(ch) = cur.at(0) {
        if !ident_char(ch) {
            break;
        }
        text.push(ch);
        cur.bump();
    }
    Tok {
        kind: TokKind::Lifetime,
        text,
        line,
    }
}

fn lex_number(cur: &mut Cursor) -> Tok {
    let line = cur.line;
    let mut text = String::new();
    while let Some(ch) = cur.at(0) {
        if ident_char(ch) {
            text.push(ch);
            cur.bump();
            continue;
        }
        // A single dot followed by a digit continues a float; `1..n`
        // and `1.method()` must not swallow the dot.
        if ch == '.' && !text.contains('.') && cur.at(1).is_some_and(|d| d.is_ascii_digit()) {
            text.push('.');
            cur.bump();
            continue;
        }
        break;
    }
    Tok {
        kind: TokKind::Num,
        text,
        line,
    }
}

/// Marks which 1-indexed lines sit inside `#[cfg(test)]`-gated items
/// (the attribute line through the closing brace, or through the `;`
/// of an out-of-line `mod tests;`). Returns a mask sized to
/// `line_count` where `mask[line - 1]` is true for exempt lines.
pub fn test_mask(toks: &[Tok], line_count: usize) -> Vec<bool> {
    let mut mask = vec![false; line_count];
    let mut depth: i64 = 0;
    // (attribute start line, depth the guarded block opened at).
    let mut active: Option<(usize, i64)> = None;
    let mut pending_start: Option<usize> = None;
    let mut idx = 0usize;
    fn mark(from: usize, to: usize, mask: &mut [bool]) {
        for l in from..=to {
            if let Some(slot) = l.checked_sub(1).and_then(|z| mask.get_mut(z)) {
                *slot = true;
            }
        }
    }
    while let Some(tok) = toks.get(idx) {
        // Detect the exact attribute token run `# [ cfg ( test ) ]`.
        if active.is_none() && pending_start.is_none() && tok.is_punct("#") {
            let window: Vec<&str> = toks
                .iter()
                .skip(idx + 1)
                .take(6)
                .map(|t| t.text.as_str())
                .collect();
            if window == ["[", "cfg", "(", "test", ")", "]"] {
                pending_start = Some(tok.line);
                idx += 7;
                continue;
            }
        }
        match tok.text.as_str() {
            "{" if tok.kind == TokKind::Punct => {
                if let Some(start) = pending_start.take() {
                    active = Some((start, depth));
                }
                depth += 1;
            }
            "}" if tok.kind == TokKind::Punct => {
                depth -= 1;
                if let Some((start, open_depth)) = active {
                    if open_depth == depth {
                        mark(start, tok.line, &mut mask);
                        active = None;
                    }
                }
            }
            ";" if tok.kind == TokKind::Punct && active.is_none() => {
                // `#[cfg(test)] mod tests;` — only the declaration.
                if let Some(start) = pending_start.take() {
                    mark(start, tok.line, &mut mask);
                }
            }
            _ => {}
        }
        idx += 1;
    }
    // An unclosed guarded block (truncated file) masks to the end.
    if let Some((start, _)) = active {
        mark(start, line_count, &mut mask);
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_leave_the_stream() {
        let toks = lex("let a = \"thread_rng\"; // thread_rng\nlet b = 1;");
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "thread_rng"));
        let strs: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "thread_rng");
        assert_eq!(toks.last().unwrap().line, 2);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let toks = lex("let r = r#\"HashMap \" inner\"#; let c = '\\n'; let l: &'static str = x;");
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text.contains("HashMap")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("inner")));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner HashMap */ still */ let x = 1;");
        assert!(!toks.iter().any(|t| t.text.contains("HashMap")));
        assert!(toks.iter().any(|t| t.is_ident("let")));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = lex("let a = b\"bytes\"; let b = br#\"raw bytes\"#; let brr = 1;");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            2,
            "{toks:?}"
        );
        // `brr` is an identifier, not a byte-raw-string prefix.
        assert!(toks.iter().any(|t| t.is_ident("brr")));
    }

    #[test]
    fn fused_punct_and_numbers() {
        assert_eq!(
            texts("a::b => c -> 1..n 2..=3 4.5"),
            vec!["a", "::", "b", "=>", "c", "->", "1", "..", "n", "2", "..=", "3", "4.5"]
        );
    }

    #[test]
    fn float_spellings_stay_single_tokens() {
        let toks = lex("1.5 + 2e-3 + x.method()");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1.5"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "2e"));
        assert!(toks.iter().any(|t| t.is_punct(".")));
    }

    #[test]
    fn cfg_test_mask_covers_the_block() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let toks = lex(src);
        let mask = test_mask(&toks, src.lines().count());
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_mask_out_of_line_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests;\nfn c() {}\n";
        let toks = lex(src);
        let mask = test_mask(&toks, src.lines().count());
        assert_eq!(mask, vec![false, true, true, false]);
    }

    #[test]
    fn truncated_input_never_panics() {
        for src in [
            "\"unclosed",
            "r#\"unclosed",
            "'",
            "/* unclosed",
            "b\"x",
            "1.",
        ] {
            let _ = lex(src);
        }
    }
}
