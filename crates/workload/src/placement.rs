//! Initial-placement analysis (no simulation): Table I and Figure 1.
//!
//! Table I reports the median and σ of the per-node workload immediately
//! after `tasks` SHA-1 keys land on `nodes` SHA-1-placed nodes. This
//! module computes those distributions directly on a [`Ring`], skipping
//! the tick loop entirely.

use autobal_core::Ring;
use autobal_id::Id;
use autobal_stats::rng::{domains, substream};
use autobal_stats::Summary;

use crate::gen;

/// Builds one random placement and returns the per-node loads.
pub fn initial_loads(nodes: usize, tasks: usize, seed: u64, trial: u64) -> Vec<u64> {
    let mut placement = substream(seed, trial, domains::PLACEMENT);
    let mut task_rng = substream(seed, trial, domains::TASKS);
    let node_ids = gen::sha1_ids(nodes, &mut placement);
    let keys = gen::sha1_keys(tasks, &mut task_rng);
    loads_for_placement(&node_ids, keys)
}

/// Per-node loads for an explicit placement.
pub fn loads_for_placement(node_ids: &[Id], keys: Vec<Id>) -> Vec<u64> {
    let mut ring = Ring::new();
    for (i, &id) in node_ids.iter().enumerate() {
        ring.insert_vnode(id, i)
            .expect("duplicate node id in placement");
    }
    ring.assign_tasks(keys);
    ring.loads_by_owner(node_ids.len())
}

/// Summary (median, σ, …) of one random placement — one Table I sample.
pub fn initial_load_summary(nodes: usize, tasks: usize, seed: u64, trial: u64) -> Summary {
    Summary::from_u64s(&initial_loads(nodes, tasks, seed, trial)).expect("nodes > 0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobal_stats::spacings;

    #[test]
    fn loads_sum_to_task_count() {
        let loads = initial_loads(100, 5_000, 7, 0);
        assert_eq!(loads.len(), 100);
        assert_eq!(loads.iter().sum::<u64>(), 5_000);
    }

    #[test]
    fn median_tracks_spacings_theory() {
        // Average a handful of trials of a mid-size network; the median
        // should approach T/n·ln2 (paper Table I row 1000/100000 ⇒ 69.4).
        let mut medians = 0.0;
        let trials = 5;
        for t in 0..trials {
            medians += initial_load_summary(1000, 100_000, 11, t).median;
        }
        let measured = medians / trials as f64;
        let theory = spacings::expected_median_load(1000, 100_000); // ≈ 69.3
        assert!(
            (measured - theory).abs() < 6.0,
            "measured {measured} vs theory {theory}"
        );
    }

    #[test]
    fn sigma_is_near_mean() {
        let s = initial_load_summary(1000, 100_000, 13, 0);
        // Exponential spacings: σ ≈ mean (paper: 137 ≈ wait — Table I has
        // σ 137 for mean 100; σ includes trial noise. Ours: single trial
        // σ close to mean 100 within 25%).
        assert!(
            (s.std_dev - s.mean).abs() / s.mean < 0.25,
            "σ {} mean {}",
            s.std_dev,
            s.mean
        );
    }

    #[test]
    fn explicit_placement_is_deterministic() {
        let ids = gen::evenly_spaced_ids(10);
        let keys: Vec<Id> = (0..100u64).map(|v| Id::from(v * 1_000_003)).collect();
        let a = loads_for_placement(&ids, keys.clone());
        let b = loads_for_placement(&ids, keys);
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<u64>(), 100);
    }
}
