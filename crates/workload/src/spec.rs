//! Named, serializable experiment specifications.

use autobal_core::SimConfig;
use serde::{Deserialize, Serialize};

/// A named batch of identical trials — one table row or figure series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Identifier used in file names and logs (e.g. `table2_churn0.01`).
    pub name: String,
    /// The per-trial simulator configuration.
    pub config: SimConfig,
    /// How many independent trials to run (paper: 100).
    pub trials: u64,
    /// Master seed; trial `t` derives stream `t`.
    pub seed: u64,
}

impl ExperimentSpec {
    pub fn new(name: impl Into<String>, config: SimConfig, trials: u64, seed: u64) -> Self {
        ExperimentSpec {
            name: name.into(),
            config,
            trials,
            seed,
        }
    }

    /// JSON round-trip helpers for archiving exactly what was run.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobal_core::StrategyKind;

    #[test]
    fn json_roundtrip() {
        let spec = ExperimentSpec::new(
            "demo",
            SimConfig {
                nodes: 10,
                tasks: 100,
                strategy: StrategyKind::Churn,
                churn_rate: 0.01,
                ..SimConfig::default()
            },
            5,
            42,
        );
        let json = spec.to_json();
        let back = ExperimentSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(ExperimentSpec::from_json("{nope").is_err());
    }
}
