//! One-knob parameter sweeps — the machinery behind the §VI-B-1
//! "Effects of Other Variables" analyses and the ablation benches.

use crate::trials::{run_and_summarize, TrialStats};
use autobal_core::SimConfig;

/// The result of sweeping a single knob.
#[derive(Debug, Clone)]
pub struct SweepPoint<V> {
    pub value: V,
    pub stats: TrialStats,
}

/// Runs `trials` per point, applying `set` to the base config for each
/// value of the knob.
pub fn sweep<V, F>(
    base: &SimConfig,
    values: &[V],
    trials: u64,
    seed: u64,
    set: F,
) -> Vec<SweepPoint<V>>
where
    V: Clone,
    F: Fn(&mut SimConfig, &V),
{
    values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let mut cfg = base.clone();
            set(&mut cfg, v);
            SweepPoint {
                value: v.clone(),
                stats: run_and_summarize(&cfg, trials, seed ^ ((i as u64 + 1) << 32)),
            }
        })
        .collect()
}

/// Convenience: sweep the churn rate (Table II's row axis).
pub fn sweep_churn_rate(
    base: &SimConfig,
    rates: &[f64],
    trials: u64,
    seed: u64,
) -> Vec<SweepPoint<f64>> {
    sweep(base, rates, trials, seed, |cfg, &r| cfg.churn_rate = r)
}

/// Convenience: sweep the Sybil threshold.
pub fn sweep_threshold(
    base: &SimConfig,
    thresholds: &[u64],
    trials: u64,
    seed: u64,
) -> Vec<SweepPoint<u64>> {
    sweep(base, thresholds, trials, seed, |cfg, &t| {
        cfg.sybil_threshold = t
    })
}

/// True when mean runtime factors are non-increasing along the sweep
/// (within `slack` of noise) — the Table II monotonicity check.
pub fn is_monotone_improving<V>(points: &[SweepPoint<V>], slack: f64) -> bool {
    points
        .windows(2)
        .all(|w| w[1].stats.mean_runtime_factor <= w[0].stats.mean_runtime_factor + slack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobal_core::StrategyKind;

    fn base() -> SimConfig {
        SimConfig {
            nodes: 60,
            tasks: 6_000,
            strategy: StrategyKind::Churn,
            ..SimConfig::default()
        }
    }

    #[test]
    fn churn_sweep_is_monotone() {
        let pts = sweep_churn_rate(&base(), &[0.0, 0.005, 0.02], 6, 1);
        assert_eq!(pts.len(), 3);
        assert!(
            is_monotone_improving(&pts, 0.25),
            "{:?}",
            pts.iter()
                .map(|p| p.stats.mean_runtime_factor)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn sweep_applies_the_knob() {
        let pts = sweep(&base(), &[1usize, 10], 2, 2, |cfg, &v| {
            cfg.num_successors = v;
        });
        assert_eq!(pts[0].value, 1);
        assert_eq!(pts[1].value, 10);
    }

    #[test]
    fn threshold_sweep_runs() {
        let mut b = base();
        b.strategy = StrategyKind::RandomInjection;
        let pts = sweep_threshold(&b, &[0, 5], 4, 3);
        assert!(pts.iter().all(|p| p.stats.incomplete == 0));
    }

    #[test]
    fn monotone_check_detects_regression() {
        let pts = sweep(&base(), &[0.02f64, 0.0], 6, 4, |cfg, &r| {
            cfg.churn_rate = r;
        });
        // Reversed order: factor increases, so not monotone improving.
        assert!(!is_monotone_improving(&pts, 0.05));
    }
}
