//! Identifier and key generators.

use autobal_id::{ring, sha1::sha1_id_of_u64, Id};
use autobal_stats::rng::DetRng;
use rand::Rng;
use std::collections::BTreeSet;

/// `n` distinct node ids drawn uniformly at random (the fast generator
/// the simulator uses by default — statistically identical to hashing
/// random numbers with SHA-1).
pub fn random_ids(n: usize, rng: &mut DetRng) -> Vec<Id> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let id = Id::random(rng);
        if seen.insert(id) {
            out.push(id);
        }
    }
    out
}

/// `n` task keys produced the paper's way: "feeding random numbers into
/// the SHA1 hash function". Slower than [`random_ids`] but bit-faithful
/// to the described methodology; the `table1` experiment uses it.
pub fn sha1_keys(n: usize, rng: &mut DetRng) -> Vec<Id> {
    (0..n).map(|_| sha1_id_of_u64(rng.gen())).collect()
}

/// `n` distinct SHA-1 node ids.
pub fn sha1_ids(n: usize, rng: &mut DetRng) -> Vec<Id> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let id = sha1_id_of_u64(rng.gen());
        if seen.insert(id) {
            out.push(id);
        }
    }
    out
}

/// `n` evenly spaced node ids (Figure 3's idealized placement):
/// `id_i = floor(i · 2^160 / n)`, computed exactly except for the final
/// position which uses `2^160 − 1`.
pub fn evenly_spaced_ids(n: usize) -> Vec<Id> {
    assert!(n > 0, "need at least one node");
    assert!(n <= u32::MAX as usize, "too many nodes for exact spacing");
    (0..n)
        .map(|i| ring::fraction_point(Id::ZERO, Id::MAX, i as u32, n as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobal_stats::rng::seeded_rng;
    use std::collections::HashSet;

    #[test]
    fn random_ids_are_distinct_and_reproducible() {
        let a = random_ids(100, &mut seeded_rng(1));
        let b = random_ids(100, &mut seeded_rng(1));
        assert_eq!(a, b);
        let set: HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn sha1_keys_reproducible_and_spread() {
        let a = sha1_keys(50, &mut seeded_rng(2));
        let b = sha1_keys(50, &mut seeded_rng(2));
        assert_eq!(a, b);
        // Spread check: top byte diversity.
        let tops: HashSet<u8> = a.iter().map(|id| id.to_be_bytes()[0]).collect();
        assert!(tops.len() > 20, "SHA-1 keys should scatter");
    }

    #[test]
    fn sha1_ids_distinct() {
        let ids = sha1_ids(64, &mut seeded_rng(3));
        let set: HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn evenly_spaced_is_actually_even() {
        let ids = evenly_spaced_ids(8);
        assert_eq!(ids[0], Id::ZERO);
        assert_eq!(ids.len(), 8);
        // Consecutive gaps differ by at most a rounding unit.
        let gaps: Vec<f64> = ids
            .windows(2)
            .map(|w| ring::distance(w[0], w[1]).to_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        for g in &gaps {
            assert!((g - mean).abs() / mean < 1e-6);
        }
        // Sorted ascending (prerequisite for Sim::with_placement).
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn evenly_spaced_single_node() {
        assert_eq!(evenly_spaced_ids(1), vec![Id::ZERO]);
    }

    #[test]
    #[should_panic]
    fn evenly_spaced_rejects_zero() {
        evenly_spaced_ids(0);
    }
}
