//! Plain-text table assembly (Markdown pipes + CSV), used by the `repro`
//! binary and EXPERIMENTS.md generation.

/// A simple column-oriented table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// GitHub-flavored Markdown rendering.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.header.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.header {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// CSV rendering (naive quoting: fields containing commas or quotes
    /// are double-quoted).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 decimal places, the paper's table style.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_layout() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1", "2"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |\n|---|---|\n"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_quotes_commas_and_quotes() {
        let mut t = Table::new(vec!["x"]);
        t.push_row(vec!["has,comma"]);
        t.push_row(vec!["has\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["only-one"]);
        t.push_row(vec!["a", "b"]);
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(7.4756), "7.476");
        assert_eq!(f3(1.0), "1.000");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["h"]);
        assert!(t.is_empty());
        t.push_row(vec!["v"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
