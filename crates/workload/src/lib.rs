//! # autobal-workload
//!
//! Experiment plumbing: key/placement generators, the rayon-parallel
//! multi-trial runner, and table formatting.
//!
//! The paper's every table row is "the average of 100 trials"; this
//! crate runs those trials across cores with deterministic per-trial
//! seeds, so any row can be reproduced bit-for-bit from `(spec, seed)`.

pub mod cache;
pub mod gen;
pub mod placement;
pub mod spec;
pub mod sweep;
pub mod tables;
pub mod trials;

pub use cache::{run_and_summarize_cached, run_trials_cached, WorkloadCache};
pub use gen::{evenly_spaced_ids, random_ids, sha1_keys};
pub use placement::initial_load_summary;
pub use spec::ExperimentSpec;
pub use sweep::{sweep, SweepPoint};
pub use trials::{run_trials, summarize, TrialStats};
