//! Shared, read-only workload generation.
//!
//! Every trial of every experiment cell used to regenerate its node
//! placement and task key set from scratch — for SHA-1 workloads that
//! means re-hashing millions of keys per trial even when two cells
//! differ only in strategy. A [`WorkloadCache`] generates each distinct
//! `(seed, trial, kind, n)` workload exactly once and hands out
//! reference-counted slices (`Arc<[Id]>`), so concurrent rayon trials
//! share one immutable copy.
//!
//! Generation is **bit-identical** to the uncached paths: the same
//! substream domains and the same generator bodies as
//! `autobal_core::Sim::new` and [`crate::placement::initial_loads`]
//! (pinned by the equivalence tests below), so caching can never change
//! a result — only how often it is computed.

use crate::gen;
use autobal_core::{RunResult, Sim, SimConfig};
use autobal_id::Id;
use autobal_stats::rng::{domains, substream};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::trials::{summarize, TrialStats};

/// Which generator a cached entry came from. Part of the cache key so
/// the four generator families can never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    /// Distinct uniform node ids (`Sim::new`'s placement).
    RandomPlacement,
    /// Uniform task keys, duplicates allowed (`Sim::new`'s tasks).
    RandomTasks,
    /// Distinct SHA-1 node ids (`initial_loads`' placement).
    Sha1Placement,
    /// SHA-1 task keys (`initial_loads`' tasks).
    Sha1Tasks,
}

type CacheKey = (u64, u64, Kind, usize);

/// A concurrent memo table from workload parameters to generated id
/// sets. Cheap to share (`Arc<WorkloadCache>`); all methods take
/// `&self`.
#[derive(Debug, Default)]
pub struct WorkloadCache {
    entries: Mutex<BTreeMap<CacheKey, Arc<[Id]>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl WorkloadCache {
    pub fn new() -> WorkloadCache {
        WorkloadCache::default()
    }

    /// Times the map was asked for an entry it already had.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Times an entry had to be generated.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Looks up or generates one entry. Generation runs outside the
    /// lock — two threads racing on the same fresh key may both
    /// generate, but they produce identical data and the first insert
    /// wins, so sharing stays correct under any interleaving.
    fn get_or_generate(&self, key: CacheKey, generate: impl FnOnce() -> Vec<Id>) -> Arc<[Id]> {
        {
            let entries = self.entries.lock().expect("cache lock");
            if let Some(hit) = entries.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(hit);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh: Arc<[Id]> = generate().into();
        let mut entries = self.entries.lock().expect("cache lock");
        Arc::clone(entries.entry(key).or_insert(fresh))
    }

    /// The node placement `Sim::new(cfg, seed)` draws: `n` distinct
    /// uniform ids from the `PLACEMENT` substream.
    pub fn random_node_ids(&self, seed: u64, trial: u64, n: usize) -> Arc<[Id]> {
        self.get_or_generate((seed, trial, Kind::RandomPlacement, n), || {
            gen::random_ids(n, &mut substream(seed, trial, domains::PLACEMENT))
        })
    }

    /// The task keys `Sim::new(cfg, seed)` draws: `n` uniform ids from
    /// the `TASKS` substream (duplicates allowed, like the paper).
    pub fn random_task_keys(&self, seed: u64, trial: u64, n: usize) -> Arc<[Id]> {
        self.get_or_generate((seed, trial, Kind::RandomTasks, n), || {
            let mut rng = substream(seed, trial, domains::TASKS);
            (0..n).map(|_| Id::random(&mut rng)).collect()
        })
    }

    /// The SHA-1 node placement [`crate::placement::initial_loads`]
    /// builds.
    pub fn sha1_node_ids(&self, seed: u64, trial: u64, n: usize) -> Arc<[Id]> {
        self.get_or_generate((seed, trial, Kind::Sha1Placement, n), || {
            gen::sha1_ids(n, &mut substream(seed, trial, domains::PLACEMENT))
        })
    }

    /// The SHA-1 task keys [`crate::placement::initial_loads`] hashes.
    pub fn sha1_task_keys(&self, seed: u64, trial: u64, n: usize) -> Arc<[Id]> {
        self.get_or_generate((seed, trial, Kind::Sha1Tasks, n), || {
            gen::sha1_keys(n, &mut substream(seed, trial, domains::TASKS))
        })
    }

    /// Cache-backed replacement for `Sim::new(cfg, seed)`: identical
    /// simulator (the placement substreams are shared through the
    /// cache; everything else of `Sim::with_placement` runs as usual).
    pub fn sim(&self, cfg: SimConfig, seed: u64) -> Sim {
        let nodes = self.random_node_ids(seed, 0, cfg.nodes);
        let keys = self.random_task_keys(seed, 0, cfg.tasks as usize);
        Sim::with_placement(cfg, seed, nodes.to_vec(), keys.to_vec())
    }
}

/// [`crate::trials::run_trials`] with workloads served from `cache` —
/// same per-trial seeds, same results, shared generation.
pub fn run_trials_cached(
    cache: &WorkloadCache,
    cfg: &SimConfig,
    trials: u64,
    seed: u64,
) -> Vec<RunResult> {
    (0..trials)
        .into_par_iter()
        .map(|t| {
            let trial_seed = seed ^ (t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
            cache.sim(cfg.clone(), trial_seed).run()
        })
        .collect()
}

/// Convenience: cached run + summarize.
pub fn run_and_summarize_cached(
    cache: &WorkloadCache,
    cfg: &SimConfig,
    trials: u64,
    seed: u64,
) -> TrialStats {
    summarize(&run_trials_cached(cache, cfg, trials, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trials::run_trials;
    use autobal_core::StrategyKind;

    fn cfg(strategy: StrategyKind) -> SimConfig {
        SimConfig {
            nodes: 30,
            tasks: 1_000,
            strategy,
            ..SimConfig::default()
        }
    }

    #[test]
    fn cached_sim_matches_sim_new() {
        let cache = WorkloadCache::new();
        for seed in [1u64, 99, 0xA0B1_C2D3] {
            let a = Sim::new(cfg(StrategyKind::RandomInjection), seed).run();
            let b = cache.sim(cfg(StrategyKind::RandomInjection), seed).run();
            assert_eq!(a.ticks, b.ticks, "seed {seed}");
            assert_eq!(a.work_per_tick, b.work_per_tick, "seed {seed}");
            assert_eq!(a.messages, b.messages, "seed {seed}");
        }
    }

    #[test]
    fn cached_trials_match_uncached() {
        let cache = WorkloadCache::new();
        let a = run_trials(&cfg(StrategyKind::None), 4, 99);
        let b = run_trials_cached(&cache, &cfg(StrategyKind::None), 4, 99);
        assert_eq!(
            a.iter().map(|r| r.ticks).collect::<Vec<_>>(),
            b.iter().map(|r| r.ticks).collect::<Vec<_>>()
        );
        assert_eq!(cache.misses(), 8, "4 trials × (placement + tasks)");
    }

    #[test]
    fn second_config_on_same_seed_hits_the_cache() {
        let cache = WorkloadCache::new();
        let _ = run_trials_cached(&cache, &cfg(StrategyKind::None), 3, 7);
        let misses_after_first = cache.misses();
        // A different strategy over the same seed reuses every workload.
        let _ = run_trials_cached(&cache, &cfg(StrategyKind::RandomInjection), 3, 7);
        assert_eq!(cache.misses(), misses_after_first);
        assert!(cache.hits() >= 6);
    }

    #[test]
    fn sha1_entries_match_direct_generation() {
        let cache = WorkloadCache::new();
        let a = cache.sha1_task_keys(5, 2, 100);
        let direct = gen::sha1_keys(100, &mut substream(5, 2, domains::TASKS));
        assert_eq!(a.as_ref(), direct.as_slice());
        let b = cache.sha1_node_ids(5, 2, 50);
        let direct = gen::sha1_ids(50, &mut substream(5, 2, domains::PLACEMENT));
        assert_eq!(b.as_ref(), direct.as_slice());
        // Kind is part of the key: same (seed, trial, n) in different
        // families must not alias.
        let c = cache.random_task_keys(5, 2, 100);
        assert_ne!(a.as_ref(), c.as_ref());
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = WorkloadCache::new();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        let first = cache.random_node_ids(1, 0, 10);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = cache.random_node_ids(1, 0, 10);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&first, &second), "shared, not regenerated");
    }
}
