//! The rayon-parallel trial runner.
//!
//! Each trial gets an independent deterministic seed stream, so results
//! are reproducible regardless of thread scheduling; rayon's work
//! stealing only changes *when* a trial runs, never *what* it computes.

use autobal_core::{RunResult, Sim, SimConfig, SimMessageStats};
use rayon::prelude::*;

/// Aggregate statistics over a batch of trials.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialStats {
    pub trials: u64,
    pub mean_runtime_factor: f64,
    pub std_runtime_factor: f64,
    pub min_runtime_factor: f64,
    pub max_runtime_factor: f64,
    pub mean_ticks: f64,
    pub ideal_ticks: u64,
    /// Sum of message counters across trials.
    pub messages: SimMessageStats,
    /// Count of trials that hit the tick cap instead of finishing.
    pub incomplete: u64,
}

/// Runs `trials` independent simulations of `cfg` in parallel and
/// returns every [`RunResult`] (trial order preserved).
pub fn run_trials(cfg: &SimConfig, trials: u64, seed: u64) -> Vec<RunResult> {
    (0..trials)
        .into_par_iter()
        .map(|t| {
            // Mix the trial index into the seed; Sim::new derives all
            // its substreams from this one value.
            let trial_seed = seed ^ (t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
            Sim::new(cfg.clone(), trial_seed).run()
        })
        .collect()
}

/// Collapses a batch of results into summary statistics.
pub fn summarize(results: &[RunResult]) -> TrialStats {
    assert!(!results.is_empty(), "cannot summarize zero trials");
    let n = results.len() as f64;
    let factors: Vec<f64> = results.iter().map(|r| r.runtime_factor).collect();
    let mean = factors.iter().sum::<f64>() / n;
    let var = factors.iter().map(|f| (f - mean) * (f - mean)).sum::<f64>() / (n - 1.0).max(1.0);
    let mut messages = SimMessageStats::default();
    for r in results {
        messages.merge(&r.messages);
    }
    TrialStats {
        trials: results.len() as u64,
        mean_runtime_factor: mean,
        std_runtime_factor: var.sqrt(),
        min_runtime_factor: factors.iter().copied().fold(f64::INFINITY, f64::min),
        max_runtime_factor: factors.iter().copied().fold(0.0, f64::max),
        mean_ticks: results.iter().map(|r| r.ticks as f64).sum::<f64>() / n,
        ideal_ticks: results[0].ideal_ticks,
        messages,
        incomplete: results.iter().filter(|r| !r.completed).count() as u64,
    }
}

/// Convenience: run + summarize.
pub fn run_and_summarize(cfg: &SimConfig, trials: u64, seed: u64) -> TrialStats {
    summarize(&run_trials(cfg, trials, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autobal_core::StrategyKind;

    fn cfg() -> SimConfig {
        SimConfig {
            nodes: 30,
            tasks: 1_000,
            strategy: StrategyKind::None,
            ..SimConfig::default()
        }
    }

    #[test]
    fn trials_are_reproducible_across_runs() {
        let a = run_trials(&cfg(), 4, 99);
        let b = run_trials(&cfg(), 4, 99);
        assert_eq!(
            a.iter().map(|r| r.ticks).collect::<Vec<_>>(),
            b.iter().map(|r| r.ticks).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_trials_differ() {
        let rs = run_trials(&cfg(), 6, 1);
        let ticks: std::collections::HashSet<u64> = rs.iter().map(|r| r.ticks).collect();
        assert!(ticks.len() > 1, "independent placements should vary");
    }

    #[test]
    fn summary_statistics_are_sane() {
        let rs = run_trials(&cfg(), 8, 2);
        let s = summarize(&rs);
        assert_eq!(s.trials, 8);
        assert!(s.min_runtime_factor <= s.mean_runtime_factor);
        assert!(s.mean_runtime_factor <= s.max_runtime_factor);
        assert!(s.std_runtime_factor >= 0.0);
        assert_eq!(s.incomplete, 0);
        assert_eq!(s.ideal_ticks, rs[0].ideal_ticks);
    }

    #[test]
    #[should_panic]
    fn summarize_empty_panics() {
        summarize(&[]);
    }

    #[test]
    fn messages_are_merged() {
        let c = SimConfig {
            strategy: StrategyKind::RandomInjection,
            ..cfg()
        };
        let s = run_and_summarize(&c, 3, 3);
        assert!(s.messages.sybils_created > 0);
    }
}
