//! The mechanism behind the paper, shown from the attacker's
//! perspective first (the paper's reference [21]): a Sybil operator can
//! bracket any key and capture its ownership. The same primitive,
//! pointed at *work* instead of *data*, is the paper's load balancer.
//!
//! ```text
//! cargo run --release --example sybil_attack_demo
//! ```

use autobal::chord::{NetConfig, Network};
use autobal::id::sha1::sha1_id_of_u64;
use autobal::sim::{Sim, SimConfig, StrategyKind};
use autobal::stats::seeded_rng;

fn main() {
    attack_view();
    println!();
    defense_view();
}

/// Part 1 — the attack: a single minted identity captures a victim key.
fn attack_view() {
    println!("— the Sybil attack, as an attack —");
    let mut rng = seeded_rng(13);
    let mut net = Network::bootstrap(NetConfig::default(), 40, &mut rng);
    let victim_key = sha1_id_of_u64(777);
    let from = net.node_ids()[0];
    net.put(from, victim_key, bytes::Bytes::from_static(b"the file"))
        .unwrap();
    let honest_owner = net.owner_of(victim_key).unwrap();
    println!("  victim key {victim_key} owned by honest node {honest_owner}");

    // Identities are free to mint (Douceur's point). Any id in
    // [key, honest_owner) steals the key; the limit case is the key
    // itself — the paper's [21] shows finding such an id is fast.
    net.join(victim_key, from)
        .expect("a Sybil joins like any other node");
    let new_owner = net.owner_of(victim_key).unwrap();
    assert_ne!(new_owner, honest_owner);
    println!("  after one Sybil join: key owned by {new_owner} — captured");

    // Routing still resolves, and the key's data followed the handoff —
    // the attacker now serves the file.
    let got = net.get(from, victim_key).unwrap();
    println!(
        "  data followed the ownership transfer: {}",
        if got.is_some() { "yes" } else { "no" }
    );
}

/// Part 2 — the defense-turned-feature: the same Sybil primitive
/// balancing a computation.
fn defense_view() {
    println!("— the same primitive, as a load balancer —");
    let cfg = SimConfig {
        nodes: 150,
        tasks: 15_000,
        ..SimConfig::default()
    };
    let plain = Sim::new(cfg.clone(), 21).run();
    let balanced = Sim::new(
        SimConfig {
            strategy: StrategyKind::RandomInjection,
            ..cfg
        },
        21,
    )
    .run();
    println!(
        "  no Sybils: {} ticks (factor {:.2})",
        plain.ticks, plain.runtime_factor
    );
    println!(
        "  with controlled Sybil attack: {} ticks (factor {:.2}, {} Sybils)",
        balanced.ticks, balanced.runtime_factor, balanced.messages.sybils_created
    );
    println!(
        "  speedup {:.2}x — \"none of our strategies require a centralized\n\
         organizer\" (§II), only the freedom to mint identities.",
        plain.ticks as f64 / balanced.ticks as f64
    );
}
