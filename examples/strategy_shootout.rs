//! Head-to-head comparison of every strategy with balance metrics the
//! paper argues from histograms — Gini coefficient, Jain's index, idle
//! counts — tracked at the paper's observation ticks.
//!
//! ```text
//! cargo run --release --example strategy_shootout [nodes] [tasks]
//! ```

use autobal::sim::{Sim, SimConfig, StrategyKind};
use autobal::stats::{coefficient_of_variation, gini, jain_index};
use autobal::workload::tables::{f3, Table};

fn main() {
    let mut argv = std::env::args().skip(1);
    let nodes: usize = argv.next().and_then(|s| s.parse().ok()).unwrap_or(200);
    let tasks: u64 = argv.next().and_then(|s| s.parse().ok()).unwrap_or(20_000);

    println!("strategy shootout: {nodes} nodes, {tasks} tasks (same placement)\n");
    let mut results = Table::new(vec![
        "strategy", "ticks", "factor", "gini@35", "jain@35", "cov@35", "idle@35",
    ]);

    for strat in StrategyKind::ALL {
        let cfg = SimConfig {
            nodes,
            tasks,
            strategy: strat,
            churn_rate: if strat == StrategyKind::Churn {
                0.01
            } else {
                0.0
            },
            snapshot_ticks: vec![35],
            ..SimConfig::default()
        };
        let res = Sim::new(cfg, 1234).run();
        let (g, j, cv, idle) = match res.snapshot_at(35) {
            Some(s) => (
                gini(&s.loads),
                jain_index(&s.loads),
                coefficient_of_variation(&s.loads),
                s.idle,
            ),
            None => (0.0, 1.0, 0.0, 0), // finished before tick 35
        };
        results.push_row(vec![
            strat.label().to_string(),
            res.ticks.to_string(),
            f3(res.runtime_factor),
            f3(g),
            f3(j),
            f3(cv),
            idle.to_string(),
        ]);
    }
    println!("{}", results.to_markdown());
    println!(
        "Lower Gini / CoV and higher Jain = flatter workload. Random\n\
         injection should post the best runtime factor and the fewest\n\
         idle nodes; the neighbor strategies can show flatter mid-run\n\
         distributions while still finishing later (the paper's Fig 11\n\
         observation: the histogram shifts left but nodes idle)."
    );
}
