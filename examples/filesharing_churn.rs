//! A P2P file-distribution scenario on the real Chord substrate: peers
//! join and fail continuously (BitTorrent-style churn) while the overlay
//! keeps every file block addressable and replicated — then the tick
//! simulator shows the same churn *speeding up* a bulk download.
//!
//! ```text
//! cargo run --release --example filesharing_churn
//! ```

use autobal::chord::{NetConfig, Network};
use autobal::id::sha1::sha1_id_of_u64;
use autobal::sim::{Sim, SimConfig, StrategyKind};
use autobal::stats::seeded_rng;
use rand::Rng;

fn main() {
    protocol_level_churn();
    println!();
    tick_level_speedup();
}

/// Part 1: the protocol substrate under churn. 64 peers, 500 file
/// blocks, 20 rounds of simultaneous fail+join with maintenance between;
/// every block stays reachable and no data is lost.
fn protocol_level_churn() {
    println!("— protocol level: Chord under churn —");
    let mut rng = seeded_rng(99);
    let mut net = Network::bootstrap(NetConfig::default(), 64, &mut rng);
    for b in 0..500u64 {
        net.insert_key(sha1_id_of_u64(b));
    }
    net.maintenance_cycle(); // seed replicas

    for round in 1..=20 {
        let ids = net.node_ids();
        let victim = ids[rng.gen_range(0..ids.len())];
        net.fail(victim).expect("victim was alive");
        let newcomer = autobal::Id::random(&mut rng);
        let contact = net.node_ids()[0];
        net.join(newcomer, contact).expect("join through contact");
        net.maintenance_cycle();
        if round % 5 == 0 {
            println!(
                "  round {round:>2}: peers {}, blocks {}, messages so far {}",
                net.len(),
                net.total_keys(),
                net.stats.total()
            );
        }
    }
    net.maintenance_cycle();
    assert_eq!(
        net.total_keys(),
        500,
        "no block lost through 20 fail/join rounds"
    );

    // Every block remains addressable from an arbitrary peer.
    let from = net.node_ids()[0];
    let mut total_hops = 0u64;
    for b in 0..500u64 {
        let res = net
            .lookup(from, sha1_id_of_u64(b))
            .expect("lookup converges");
        total_hops += res.hops as u64;
    }
    println!(
        "  all 500 blocks reachable; mean lookup {:.2} hops (≈ ½·log2 64 = 3)",
        total_hops as f64 / 500.0
    );
}

/// Part 2: the paper's counter-intuitive headline — the *same* churn
/// that the protocol tolerates actually load-balances a bulk transfer.
fn tick_level_speedup() {
    println!("— tick level: churn as a load balancer —");
    let base = SimConfig {
        nodes: 100,
        tasks: 10_000,
        strategy: StrategyKind::Churn,
        ..SimConfig::default()
    };
    for rate in [0.0, 0.001, 0.01] {
        let res = Sim::new(
            SimConfig {
                churn_rate: rate,
                ..base.clone()
            },
            5,
        )
        .run();
        println!(
            "  churn {rate:<6}: {:>4} ticks (factor {:.2}, {} leaves / {} joins)",
            res.ticks, res.runtime_factor, res.messages.churn_leaves, res.messages.churn_joins
        );
    }
}
