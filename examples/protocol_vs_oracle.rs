//! Cross-validation of the two simulation fidelities: the oracle-ring
//! tick simulator (what the paper used) versus the full Chord protocol
//! substrate (what a deployment would run) — same workload, same
//! trait-object strategies, side by side with the protocol's true
//! message bill and the strategy's own overhead share.
//!
//! ```text
//! cargo run --release --example protocol_vs_oracle
//! ```

use autobal::protocol_sim::{run_protocol_sim, ProtocolSimConfig};
use autobal::sim::{Sim, SimConfig, StrategyKind};

fn main() {
    let nodes = 48;
    let tasks = 4_800u64;
    println!(
        "{nodes} nodes, {tasks} tasks — ideal runtime {} ticks\n",
        tasks / nodes as u64
    );
    println!("| level | strategy | ticks | factor | protocol msgs | strategy msgs |");
    println!("|---|---|---|---|---|---|");

    for kind in [
        StrategyKind::None,
        StrategyKind::RandomInjection,
        StrategyKind::NeighborInjection,
        StrategyKind::SmartNeighbor,
        StrategyKind::Invitation,
    ] {
        let label = kind.label();

        // Protocol substrate: the same Strategy trait object running
        // against a live Chord network.
        let p = run_protocol_sim(
            &ProtocolSimConfig {
                nodes,
                tasks,
                strategy: kind,
                ..ProtocolSimConfig::default()
            },
            7,
        );
        println!(
            "| chord protocol | {label} | {} | {:.2} | {} | {} |",
            p.ticks,
            p.runtime_factor,
            p.messages.total(),
            p.messages.strategy_overhead()
        );

        // Oracle ring: the paper's abstraction.
        let o = Sim::new(
            SimConfig {
                nodes,
                tasks,
                strategy: kind,
                ..SimConfig::default()
            },
            7,
        )
        .run();
        println!(
            "| oracle ring | {label} | {} | {:.2} | (not modeled) | {} |",
            o.ticks,
            o.runtime_factor,
            o.messages.load_queries + o.messages.invitations_sent
        );
    }
    println!(
        "\nThe two levels must tell the same story — the oracle ring is\n\
         the paper's abstraction, the protocol run pays for every lookup,\n\
         join, stabilize round, and replica push along the way."
    );
}
