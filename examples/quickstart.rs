//! Quickstart: build a DHT computation, let underloaded nodes perform a
//! controlled Sybil attack, and watch the runtime approach the ideal.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use autobal::sim::{Sim, SimConfig, StrategyKind};
use autobal::viz::render_histogram;
use autobal_stats::Histogram;

fn main() {
    // 200 nodes, 20k tasks — every node would finish in exactly 100
    // ticks if the SHA-1 placement were fair. It is not.
    let base = SimConfig {
        nodes: 200,
        tasks: 20_000,
        snapshot_ticks: vec![0],
        ..SimConfig::default()
    };

    let baseline = Sim::new(base.clone(), 7).run();
    println!(
        "no strategy:       {:>5} ticks (ideal {}, factor {:.2})",
        baseline.ticks, baseline.ideal_ticks, baseline.runtime_factor
    );

    let sybil = Sim::new(
        SimConfig {
            strategy: StrategyKind::RandomInjection,
            ..base.clone()
        },
        7,
    )
    .run();
    println!(
        "random injection:  {:>5} ticks (ideal {}, factor {:.2}, {} Sybils created)",
        sybil.ticks, sybil.ideal_ticks, sybil.runtime_factor, sybil.messages.sybils_created
    );

    // Show why: the initial workload distribution is wildly unfair.
    let initial = &baseline.snapshots[0];
    let hist = Histogram::auto(&initial.loads, 15);
    println!();
    println!(
        "{}",
        render_histogram("initial tasks-per-node distribution", &hist.rows(), 40)
    );
    println!(
        "speedup from the Sybil attack: {:.2}x",
        baseline.ticks as f64 / sybil.ticks as f64
    );
}
