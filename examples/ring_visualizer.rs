//! Renders Figure 2 / Figure 3 style ring visualizations to SVG for any
//! network shape: SHA-1 placement next to idealized even spacing.
//!
//! ```text
//! cargo run --release --example ring_visualizer [nodes] [tasks] [outdir]
//! ```

use autobal::stats::rng::{domains, substream};
use autobal::viz::RingScatter;
use autobal::workload::gen;

fn main() {
    let mut argv = std::env::args().skip(1);
    let nodes: usize = argv.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let tasks: usize = argv.next().and_then(|s| s.parse().ok()).unwrap_or(100);
    let outdir = argv.next().unwrap_or_else(|| "ring_svgs".to_string());

    let mut prng = substream(7, 0, domains::PLACEMENT);
    let mut trng = substream(7, 0, domains::TASKS);
    let sha1_nodes = gen::sha1_ids(nodes, &mut prng);
    let keys = gen::sha1_keys(tasks, &mut trng);
    let even_nodes = gen::evenly_spaced_ids(nodes);

    std::fs::create_dir_all(&outdir).expect("create output dir");

    let sha1_svg = RingScatter::new(
        format!("{nodes} SHA-1 nodes, {tasks} tasks"),
        sha1_nodes.clone(),
        keys.clone(),
    )
    .to_svg();
    let sha1_path = format!("{outdir}/ring_sha1.svg");
    std::fs::write(&sha1_path, sha1_svg).expect("write svg");

    let even_svg = RingScatter::new(
        format!("{nodes} evenly spaced nodes, {tasks} tasks"),
        even_nodes.clone(),
        keys.clone(),
    )
    .to_svg();
    let even_path = format!("{outdir}/ring_even.svg");
    std::fs::write(&even_path, even_svg).expect("write svg");

    // Print the imbalance the pictures show.
    let sha1_loads = autobal::workload::placement::loads_for_placement(&sha1_nodes, keys.clone());
    let even_loads = autobal::workload::placement::loads_for_placement(&even_nodes, keys);
    println!("wrote {sha1_path} and {even_path}");
    println!(
        "max tasks on one node: SHA-1 placement {}, even placement {}",
        sha1_loads.iter().max().unwrap(),
        even_loads.iter().max().unwrap()
    );
    println!(
        "Gini: SHA-1 {:.3}, even {:.3} — even node spacing helps but the\n\
         task keys still cluster (the paper's Figure 3 point)",
        autobal::stats::gini(&sha1_loads),
        autobal::stats::gini(&even_loads)
    );
}
