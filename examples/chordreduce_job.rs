//! A ChordReduce-style distributed computation (the scenario that
//! motivated the paper): a MapReduce-like job whose map tasks are keyed
//! by SHA-1 onto a Chord ring of heterogeneous volunteer machines.
//!
//! Compares how long the job takes under each autonomous strategy, on
//! identical placements, and reports the bandwidth each strategy spent.
//!
//! ```text
//! cargo run --release --example chordreduce_job
//! ```

use autobal::sim::{Heterogeneity, SimConfig, StrategyKind, WorkMeasurement};
use autobal::workload::tables::{f3, Table};
use autobal::workload::trials::run_and_summarize;

fn main() {
    // Volunteer network: 150 machines of strength 1–5 (think laptops to
    // servers), each completing its strength's worth of map tasks per
    // tick. The job: 30k map tasks keyed by input chunk.
    let base = SimConfig {
        nodes: 150,
        tasks: 30_000,
        heterogeneity: Heterogeneity::Heterogeneous,
        work_measurement: WorkMeasurement::StrengthPerTick,
        ..SimConfig::default()
    };
    let trials = 10;
    let seed = 2024;

    println!("ChordReduce job: 150 heterogeneous volunteers, 30k map tasks");
    println!("ideal runtime {} ticks\n", base.ideal_ticks());

    let mut table = Table::new(vec![
        "strategy",
        "mean factor",
        "σ",
        "mean ticks",
        "strategy msgs/trial",
    ]);
    for strat in StrategyKind::ALL {
        let cfg = SimConfig {
            strategy: strat,
            churn_rate: if strat == StrategyKind::Churn {
                0.01
            } else {
                0.0
            },
            ..base.clone()
        };
        let s = run_and_summarize(&cfg, trials, seed);
        table.push_row(vec![
            strat.label().to_string(),
            f3(s.mean_runtime_factor),
            f3(s.std_runtime_factor),
            format!("{:.0}", s.mean_ticks),
            (s.messages.strategy_messages() / trials).to_string(),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "Note the paper's §VI caveat reproduced here: in heterogeneous\n\
         networks the Sybil strategies balance the *workload* but weak\n\
         nodes steal work from strong ones, so the speedup is smaller\n\
         than in homogeneous networks."
    );
}
