use autobal::reference::NaiveSim;
use autobal::sim::{Sim, SimConfig, StrategyKind};

fn main() {
    let cfg = SimConfig {
        nodes: 6_000,
        tasks: 1_200_000,
        strategy: StrategyKind::None,
        churn_rate: 0.0,
        series_interval: None,
        ..SimConfig::default()
    };
    let seed = 0xA0B1_C2D3u64 ^ 0x5E;
    let _ = Sim::new(cfg.clone(), seed).run();
    for rep in 0..3 {
        let t0 = std::time::Instant::now();
        let sim = Sim::new(cfg.clone(), seed);
        let setup = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = std::time::Instant::now();
        let r = sim.run();
        let drain = t1.elapsed().as_secs_f64() * 1e3;
        let t2 = std::time::Instant::now();
        let nsim = NaiveSim::new(cfg.clone(), seed);
        let nsetup = t2.elapsed().as_secs_f64() * 1e3;
        let t3 = std::time::Instant::now();
        let nr = nsim.run();
        let ndrain = t3.elapsed().as_secs_f64() * 1e3;
        assert_eq!(r.ticks, nr.ticks);
        println!(
            "rep {rep}: opt setup {setup:.1} ms drain {drain:.1} ms | naive setup {nsetup:.1} ms drain {ndrain:.1} ms | ticks {}",
            r.ticks
        );
    }
}
