//! Offline stand-in for `rayon` (the subset the workspace uses).
//!
//! `into_par_iter().map(..).collect()` executes the mapped closure on
//! scoped OS threads, one chunk per thread, and reassembles results in
//! the original order — so results are deterministic regardless of the
//! configured thread count, which is exactly the property the
//! workspace's determinism tests pin down.

use std::cell::Cell;
use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

thread_local! {
    /// Thread count override installed by `ThreadPool::install`.
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads the current scope would use.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Something that can be turned into a parallel iterator.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;

    fn into_par_iter(self) -> Self::Iter;
}

/// A parallel iterator: a deferred computation producing an ordered
/// sequence of items.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Drives the computation, returning items in order.
    fn drive(self) -> Vec<Self::Item>;

    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Send + Sync,
    {
        Map { base: self, f }
    }

    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.drive().into_iter().sum()
    }
}

/// Parallel iterator over a materialized vector of items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;

    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

macro_rules! impl_range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = IntoParIter<$t>;

            fn into_par_iter(self) -> IntoParIter<$t> {
                IntoParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_into_par_iter!(u32, u64, usize, i32, i64);

/// Lazily mapped parallel iterator; the map closure runs on worker
/// threads when driven.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, U, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    U: Send,
    F: Fn(B::Item) -> U + Send + Sync,
{
    type Item = U;

    fn drive(self) -> Vec<U> {
        let items = self.base.drive();
        let threads = current_num_threads().max(1);
        if threads == 1 || items.len() <= 1 {
            return items.into_iter().map(&self.f).collect();
        }
        let chunk = items.len().div_ceil(threads);
        let f = &self.f;
        let mut out: Vec<Vec<U>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut iter = items.into_iter();
            loop {
                let batch: Vec<B::Item> = iter.by_ref().take(chunk).collect();
                if batch.is_empty() {
                    break;
                }
                handles.push(scope.spawn(move || batch.into_iter().map(f).collect::<Vec<U>>()));
            }
            for handle in handles {
                out.push(handle.join().expect("rayon worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }
}

/// Builder mirroring rayon's, except pools are just a thread-count
/// hint consumed by `install`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(current_num_threads),
        })
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped thread-count configuration.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing any parallel
    /// iterators it drives.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        POOL_THREADS.with(|cell| {
            let prev = cell.replace(Some(self.num_threads.max(1)));
            let result = op();
            cell.set(prev);
            result
        })
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_controls_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
    }

    #[test]
    fn single_and_multi_threaded_agree() {
        let single: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| (0u64..37).into_par_iter().map(|x| x * x).collect());
        let multi: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap()
            .install(|| (0u64..37).into_par_iter().map(|x| x * x).collect());
        assert_eq!(single, multi);
    }

    #[test]
    fn sum_works() {
        let total: u64 = (1u64..=10).collect::<Vec<_>>().into_par_iter().sum();
        assert_eq!(total, 55);
    }
}
