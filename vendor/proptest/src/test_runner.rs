//! Test configuration and per-case control flow.

use rand::SeedableRng;

/// The RNG driving strategy generation (seeded per test fn).
pub type TestRng = rand_chacha::ChaCha8Rng;

pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Runner configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        // Upstream defaults to 256; this subset trims the default so
        // full-simulation properties stay fast, while explicit
        // `with_cases` values are honored exactly.
        Config { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the sample; try the next case.
    Reject,
    /// `prop_assert*` failed; the whole test fails.
    Fail(String),
}
