//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Value` from the test RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Pairs this strategy with a filtering predicate; generation
    /// retries until the predicate passes (bounded attempts).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

pub struct Filter<S, F> {
    base: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.base.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter exhausted 1000 attempts: {}", self.reason);
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform generation over a type's whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types `any::<T>()` knows how to produce.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u128>()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII, occasionally any scalar value.
        if rng.gen::<u64>() % 8 == 0 {
            char::from_u32(rng.gen_range(0u32..=0x10FFFF) & !0xD800).unwrap_or('\u{FFFD}')
        } else {
            (rng.gen_range(0x20u32..0x7F)) as u8 as char
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
