//! Offline stand-in for `proptest`: deterministic random property
//! testing without shrinking.
//!
//! Each `proptest!` test derives a ChaCha8 seed from its own name, so
//! failures reproduce exactly across runs and machines. On assertion
//! failure the harness panics immediately with the failing values'
//! case number (no input minimization).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use strategy::{any, Strategy};

/// Derives a stable 64-bit seed from a test's identity string.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The macro core: declares `#[test]` functions that sample every
/// bound strategy `cases` times and run the body per sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::new_rng($crate::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                )));
                for case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            continue;
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {}/{} failed: {}",
                                case + 1,
                                config.cases,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Skips the current case (filters the sample).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {:?} != {:?}: {}",
                    left,
                    right,
                    format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
}
