//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Inclusive-exclusive length bounds for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max_exclusive: r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
