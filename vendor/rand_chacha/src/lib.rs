//! Vendored ChaCha8-based RNG (API subset of `rand_chacha` 0.3).
//!
//! This is a genuine ChaCha8 keystream generator: 32-byte key, 64-bit
//! block counter, and a 64-bit *stream* id occupying the nonce words,
//! so `set_stream` yields independent sequences from one seed exactly
//! like upstream. Output values are not bit-identical to upstream
//! `rand_chacha` (word order differs); the workspace only requires
//! determinism per (seed, stream).

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; 16],
    /// Next unconsumed word in `buf`; 16 means "refill needed".
    index: usize,
}

impl ChaCha8Rng {
    /// Selects an independent output stream; resets buffered output so
    /// the switch takes effect immediately.
    pub fn set_stream(&mut self, stream: u64) {
        if stream != self.stream {
            self.stream = stream;
            self.index = 16;
        }
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let initial = state;
        for _ in 0..4 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.buf = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn streams_are_independent_and_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        a.set_stream(3);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();

        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(3);
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);

        let mut c = ChaCha8Rng::seed_from_u64(7);
        c.set_stream(4);
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn chacha_block_mixes_counter() {
        // Consecutive blocks must differ (counter is live).
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let block1: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let block2: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(block1, block2);
    }

    #[test]
    fn gen_f64_is_uniformish() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }
}
