//! Offline stand-in for the `bytes` crate: a cheaply-cloneable,
//! immutable byte buffer. Backed by `Arc<[u8]>` so clones are
//! reference bumps, matching the sharing semantics replica stores
//! rely on.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    // Inherent method mirroring the upstream crate's public surface.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        **self == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }

    #[test]
    fn constructors_agree() {
        assert_eq!(Bytes::from_static(b"hi"), Bytes::from("hi".to_string()));
        assert_eq!(Bytes::from(vec![104, 105]).len(), 2);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from(vec![65, 0]);
        assert_eq!(format!("{b:?}"), "b\"A\\x00\"");
    }
}
