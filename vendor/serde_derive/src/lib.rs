//! Derive macros for the vendored `serde` data model.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no syn/quote — the
//! registry is unreachable in this environment). Supports exactly what
//! the workspace uses:
//!
//! - named-field structs (non-generic)
//! - enums with unit and struct variants, externally tagged
//!   (`"Variant"` / `{"Variant": {…}}`)
//! - field attributes `#[serde(default)]` and `#[serde(default = "path")]`
//! - `Option<T>` fields deserialize to `None` when missing
//!
//! The generated code only ever calls `::serde::Serialize::to_node` /
//! `::serde::Deserialize::from_node`, so field *types* never need to be
//! understood — type inference fills them in at the use site.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        Kind::Struct(fields) => serialize_struct(&item.name, fields),
        Kind::Enum(variants) => serialize_enum(&item.name, variants),
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_node(&self) -> ::serde::Node {{\n{body}\n}}\n\
         }}",
        name = item.name,
        body = body
    );
    out.parse().expect("derived Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        Kind::Struct(fields) => deserialize_struct(&item.name, fields),
        Kind::Enum(variants) => deserialize_enum(&item.name, variants),
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_node(node: &::serde::Node) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}",
        name = item.name,
        body = body
    );
    out.parse().expect("derived Deserialize impl parses")
}

// ---------------------------------------------------------------- model

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `Some(None)` for `#[serde(default)]`, `Some(Some(path))` for
    /// `#[serde(default = "path")]`.
    default: Option<Option<String>>,
    /// Whether the declared type's head is `Option` (missing → None).
    is_option: bool,
}

struct Variant {
    name: String,
    /// `None` for unit variants, field list for struct variants.
    fields: Option<Vec<Field>>,
}

// --------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic types are not supported ({name})");
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            panic!("serde derive: expected braced body for {name}, got {other:?} (tuple/unit items unsupported)")
        }
    };
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_fields(body)),
        "enum" => Kind::Enum(parse_variants(body)),
        other => panic!("serde derive: unsupported item kind `{other}`"),
    };
    Item { name, kind }
}

/// Advances past attributes (recording nothing) and any `pub`/`pub(..)`.
fn skip_attributes_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + [...]
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Scans the attributes preceding a field/variant and extracts the
/// serde `default` configuration, leaving `i` on the first
/// non-attribute token.
fn take_serde_default(tokens: &[TokenTree], i: &mut usize) -> Option<Option<String>> {
    let mut default = None;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(attr)) = tokens.get(*i + 1) else {
            panic!("serde derive: dangling `#`");
        };
        *i += 2;
        let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let Some(TokenTree::Group(args)) = inner.get(1) else {
            continue;
        };
        let args: Vec<TokenTree> = args.stream().into_iter().collect();
        match args.first() {
            Some(TokenTree::Ident(id)) if id.to_string() == "default" => {
                if let Some(TokenTree::Literal(lit)) = args.get(2) {
                    let text = lit.to_string();
                    let path = text.trim_matches('"').to_string();
                    default = Some(Some(path));
                } else {
                    default = Some(None);
                }
            }
            Some(other) => panic!("serde derive: unsupported serde attribute {other}"),
            None => {}
        }
    }
    default
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = take_serde_default(&tokens, &mut i);
        skip_attributes_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type: consume until a top-level comma, tracking
        // angle-bracket depth (`Vec<Vec<u64>>` arrives as single `>`s).
        let mut depth = 0i32;
        let mut head = String::new();
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            if head.is_empty() {
                if let TokenTree::Ident(id) = tok {
                    head = id.to_string();
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        let is_option = head == "Option";
        fields.push(Field {
            name,
            default,
            is_option,
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde derive: tuple variant `{name}` unsupported")
            }
            _ => None,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde derive: explicit discriminants unsupported")
            }
            None => {}
            other => panic!("serde derive: expected `,` after variant, got {other:?}"),
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// --------------------------------------------------------------- codegen

fn serialize_fields_expr(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::from(
        "{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Node)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        out.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{name}\"), \
             ::serde::Serialize::to_node({prefix}{name})));\n",
            name = f.name,
            prefix = access_prefix
        ));
    }
    out.push_str("::serde::Node::Object(__fields) }");
    out
}

fn serialize_struct(_name: &str, fields: &[Field]) -> String {
    serialize_fields_expr(fields, "&self.")
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        match &v.fields {
            None => arms.push_str(&format!(
                "{name}::{v} => ::serde::Node::String(::std::string::String::from(\"{v}\")),\n",
                v = v.name
            )),
            Some(fields) => {
                let bindings: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let inner = serialize_fields_expr(fields, "");
                arms.push_str(&format!(
                    "{name}::{v} {{ {binds} }} => ::serde::Node::Object(::std::vec![\
                     (::std::string::String::from(\"{v}\"), {inner})]),\n",
                    v = v.name,
                    binds = bindings.join(", "),
                    inner = inner
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

/// Builds the `field: <expr>` initializers for a braced constructor,
/// reading from an object entry slice named `__obj`.
fn deserialize_field_inits(fields: &[Field], ty: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let missing = match &f.default {
            Some(None) => "::std::default::Default::default()".to_string(),
            Some(Some(path)) => format!("{path}()"),
            None if f.is_option => "::std::option::Option::None".to_string(),
            None => format!(
                "return ::std::result::Result::Err(\
                 ::serde::Error::missing_field(\"{name}\", \"{ty}\"))",
                name = f.name
            ),
        };
        out.push_str(&format!(
            "{name}: match ::serde::__get(__obj, \"{name}\") {{\n\
                 ::std::option::Option::Some(__v) => ::serde::Deserialize::from_node(__v)?,\n\
                 ::std::option::Option::None => {missing},\n\
             }},\n",
            name = f.name
        ));
    }
    out
}

fn deserialize_struct(name: &str, fields: &[Field]) -> String {
    format!(
        "let __obj = node.as_object().ok_or_else(|| \
             ::serde::Error::invalid_type(\"object for struct {name}\", node))?;\n\
         ::std::result::Result::Ok({name} {{\n{inits}}})",
        inits = deserialize_field_inits(fields, name)
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut struct_arms = String::new();
    for v in variants {
        match &v.fields {
            None => unit_arms.push_str(&format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                v = v.name
            )),
            Some(fields) => struct_arms.push_str(&format!(
                "\"{v}\" => {{\n\
                     let __obj = __inner.as_object().ok_or_else(|| \
                         ::serde::Error::invalid_type(\"object for variant {v}\", __inner))?;\n\
                     ::std::result::Result::Ok({name}::{v} {{\n{inits}}})\n\
                 }}\n",
                v = v.name,
                inits = deserialize_field_inits(fields, name)
            )),
        }
    }
    format!(
        "match node {{\n\
             ::serde::Node::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(\
                     ::serde::Error::unknown_variant(__other, \"{name}\")),\n\
             }},\n\
             ::serde::Node::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                     {struct_arms}\
                     __other => ::std::result::Result::Err(\
                         ::serde::Error::unknown_variant(__other, \"{name}\")),\n\
                 }}\n\
             }}\n\
             __other => ::std::result::Result::Err(\
                 ::serde::Error::invalid_type(\"string or single-key object for enum {name}\", \
                 __other)),\n\
         }}"
    )
}
