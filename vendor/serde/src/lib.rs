//! Offline stand-in for `serde`.
//!
//! Instead of upstream's zero-copy visitor architecture, this vendored
//! subset routes everything through one self-describing tree,
//! [`Node`] — the only consumer in the workspace is `serde_json`
//! (vendored alongside), and every impl is produced by the vendored
//! `serde_derive`, so the trait shape is private API between the three
//! crates. Public surface kept compatible: `serde::Serialize`,
//! `serde::Deserialize` (as derive macros and trait bounds) and the
//! `#[serde(default)]` / `#[serde(default = "path")]` field attributes.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The self-describing data-model tree every value serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    String(String),
    Array(Vec<Node>),
    Object(Vec<(String, Node)>),
}

impl Node {
    pub fn as_object(&self) -> Option<&[(String, Node)]> {
        match self {
            Node::Object(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Node]> {
        match self {
            Node::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Looks up a key in an object's entry list (helper for derived code).
pub fn __get<'a>(entries: &'a [(String, Node)], key: &str) -> Option<&'a Node> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }

    pub fn missing_field(field: &str, ty: &str) -> Error {
        Error::custom(format!("missing field `{field}` in {ty}"))
    }

    pub fn unknown_variant(variant: &str, ty: &str) -> Error {
        Error::custom(format!("unknown variant `{variant}` for {ty}"))
    }

    pub fn invalid_type(expected: &str, got: &Node) -> Error {
        let got = match got {
            Node::Null => "null",
            Node::Bool(_) => "bool",
            Node::U64(_) | Node::I64(_) | Node::F64(_) => "number",
            Node::String(_) => "string",
            Node::Array(_) => "array",
            Node::Object(_) => "object",
        };
        Error::custom(format!("invalid type: expected {expected}, got {got}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A value that can be turned into a data-model [`Node`].
pub trait Serialize {
    fn to_node(&self) -> Node;
}

/// A value that can be rebuilt from a data-model [`Node`].
pub trait Deserialize: Sized {
    fn from_node(node: &Node) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_node(&self) -> Node {
        (**self).to_node()
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_node(&self) -> Node {
                Node::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_node(node: &Node) -> Result<Self, Error> {
                let wide = match *node {
                    Node::U64(v) => v,
                    Node::I64(v) if v >= 0 => v as u64,
                    Node::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                        v as u64
                    }
                    ref other => return Err(Error::invalid_type("unsigned integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_node(&self) -> Node {
                let v = *self as i64;
                if v >= 0 {
                    Node::U64(v as u64)
                } else {
                    Node::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_node(node: &Node) -> Result<Self, Error> {
                let wide = match *node {
                    Node::I64(v) => v,
                    Node::U64(v) if v <= i64::MAX as u64 => v as i64,
                    Node::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => v as i64,
                    ref other => return Err(Error::invalid_type("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_node(&self) -> Node {
        Node::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_node(node: &Node) -> Result<Self, Error> {
        match *node {
            Node::F64(v) => Ok(v),
            Node::U64(v) => Ok(v as f64),
            Node::I64(v) => Ok(v as f64),
            ref other => Err(Error::invalid_type("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_node(&self) -> Node {
        Node::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_node(node: &Node) -> Result<Self, Error> {
        f64::from_node(node).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_node(&self) -> Node {
        Node::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_node(node: &Node) -> Result<Self, Error> {
        match *node {
            Node::Bool(b) => Ok(b),
            ref other => Err(Error::invalid_type("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_node(&self) -> Node {
        Node::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_node(node: &Node) -> Result<Self, Error> {
        match node {
            Node::String(s) => Ok(s.clone()),
            other => Err(Error::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_node(&self) -> Node {
        Node::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_node(&self) -> Node {
        Node::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_node(node: &Node) -> Result<Self, Error> {
        match node {
            Node::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::invalid_type("single-char string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_node(&self) -> Node {
        match self {
            Some(v) => v.to_node(),
            None => Node::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_node(node: &Node) -> Result<Self, Error> {
        match node {
            Node::Null => Ok(None),
            other => T::from_node(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_node(&self) -> Node {
        Node::Array(self.iter().map(Serialize::to_node).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_node(node: &Node) -> Result<Self, Error> {
        match node {
            Node::Array(items) => items.iter().map(T::from_node).collect(),
            other => Err(Error::invalid_type("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_node(&self) -> Node {
        Node::Array(self.iter().map(Serialize::to_node).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_node(&self) -> Node {
        Node::Array(self.iter().map(Serialize::to_node).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_node(node: &Node) -> Result<Self, Error> {
        let items = Vec::<T>::from_node(node)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl Serialize for Node {
    fn to_node(&self) -> Node {
        self.clone()
    }
}

impl Deserialize for Node {
    fn from_node(node: &Node) -> Result<Self, Error> {
        Ok(node.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_node(&42u64.to_node()).unwrap(), 42);
        assert_eq!(i64::from_node(&(-3i64).to_node()).unwrap(), -3);
        assert_eq!(f64::from_node(&1.5f64.to_node()).unwrap(), 1.5);
        assert!(bool::from_node(&true.to_node()).unwrap());
        assert_eq!(
            String::from_node(&"hi".to_string().to_node()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<u64> = None;
        assert_eq!(none.to_node(), Node::Null);
        assert_eq!(Option::<u64>::from_node(&Node::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_node(&Node::U64(9)).unwrap(), Some(9u64));
    }

    #[test]
    fn array_roundtrip() {
        let limbs = [1u64, 2, 3];
        let node = limbs.to_node();
        assert_eq!(<[u64; 3]>::from_node(&node).unwrap(), limbs);
        assert!(<[u64; 2]>::from_node(&node).is_err());
    }

    #[test]
    fn cross_numeric_coercions() {
        assert_eq!(f64::from_node(&Node::U64(2)).unwrap(), 2.0);
        assert_eq!(u64::from_node(&Node::F64(2.0)).unwrap(), 2);
        assert!(u64::from_node(&Node::F64(2.5)).is_err());
        assert!(u8::from_node(&Node::U64(300)).is_err());
    }
}
