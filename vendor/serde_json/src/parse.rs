//! Recursive-descent JSON parser producing `serde::Node` trees.

use crate::Error;
use serde::Node;

pub(crate) fn parse(input: &str) -> Result<Node, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let node = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(node)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Node, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Node::String(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Node::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Node::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Node::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Node, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Node::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Node::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Node, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Node::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Node::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Surrogate pairs arrive as two \u escapes.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if !(self.eat_literal("\\u")) {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8:
                    // it came from &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits (after `\u`), leaving `pos` past
    /// them.
    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Node, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Node::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Node::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Node::F64)
            .map_err(|_| self.error("invalid number"))
    }
}
