//! A queryable JSON tree with the ergonomic sugar tests rely on
//! (`v["key"]`, `v["n"] == 40`, `.as_f64()`).

use serde::{Deserialize, Error as SerdeError, Node, Serialize};
use std::fmt;
use std::ops::Index;

#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub(crate) fn of_node(node: Node) -> Value {
        match node {
            Node::Null => Value::Null,
            Node::Bool(b) => Value::Bool(b),
            Node::U64(v) => Value::U64(v),
            Node::I64(v) => Value::I64(v),
            Node::F64(v) => Value::F64(v),
            Node::String(s) => Value::String(s),
            Node::Array(items) => Value::Array(items.into_iter().map(Value::of_node).collect()),
            Node::Object(entries) => Value::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| (k, Value::of_node(v)))
                    .collect(),
            ),
        }
    }

    fn to_node_inner(&self) -> Node {
        match self {
            Value::Null => Node::Null,
            Value::Bool(b) => Node::Bool(*b),
            Value::U64(v) => Node::U64(*v),
            Value::I64(v) => Node::I64(*v),
            Value::F64(v) => Node::F64(*v),
            Value::String(s) => Node::String(s.clone()),
            Value::Array(items) => Node::Array(items.iter().map(Value::to_node_inner).collect()),
            Value::Object(entries) => Node::Object(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_node_inner()))
                    .collect(),
            ),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match i64::try_from(*other) {
                    Ok(v) => self.as_i64() == Some(v),
                    Err(_) => self.as_u64() == <u64>::try_from(*other).ok(),
                }
            }
        }
    )*};
}

impl_value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for Value {
    fn to_node(&self) -> Node {
        self.to_node_inner()
    }
}

impl Deserialize for Value {
    fn from_node(node: &Node) -> Result<Self, SerdeError> {
        Ok(Value::of_node(node.clone()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::write::compact(&self.to_node_inner()))
    }
}
