//! Offline stand-in for `serde_json`, built over the vendored `serde`
//! data model. Provides `to_string[_pretty]`, `from_str`, `from_slice`,
//! and a queryable [`Value`] with indexing and comparison sugar.
//!
//! Floats are written with Rust's shortest-roundtrip formatting and
//! parsed with `str::parse::<f64>`, so `T → JSON → T` preserves every
//! finite `f64` bit-for-bit — the property the workspace's determinism
//! tests rely on.

mod parse;
mod value;
mod write;

pub use value::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e)
    }
}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::compact(&value.to_node()))
}

/// Serializes a value as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::pretty(&value.to_node()))
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let node = parse::parse(s)?;
    Ok(T::from_node(&node)?)
}

/// Parses a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(Value::of_node(value.to_node()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip_preserves_floats() {
        for f in [0.1f64, 1.0, 1e20, -3.25, 0.30000000000000004, f64::MIN] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{json}");
        }
    }

    #[test]
    fn integers_and_strings_roundtrip() {
        let json = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), u64::MAX);
        let s = "he said \"hi\"\n\t\\ done ✓".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn vectors_and_options_roundtrip() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u64>>>(&json).unwrap(), v);
    }

    #[test]
    fn value_indexing_and_comparisons() {
        let v: Value = from_str(r#"{"name":"churn","nodes":40,"f":1.5,"zero":0}"#).unwrap();
        assert_eq!(v["name"], "churn");
        assert_eq!(v["nodes"], 40);
        assert_eq!(v["zero"], 0);
        assert!(v["missing"].is_null());
        assert_eq!(v["f"].as_f64().unwrap(), 1.5);
        assert_eq!(v["nodes"].as_u64().unwrap(), 40);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v: Vec<Vec<u64>> = vec![vec![1, 2], vec![]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(from_str::<Vec<Vec<u64>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u64>("not json").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 trailing").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str("\"a\\u0041\\u00e9\\ud83d\\ude00b\"").unwrap();
        assert_eq!(s, "aAé😀b");
    }
}
