//! JSON text emission (compact and pretty).

use serde::Node;

pub(crate) fn compact(node: &Node) -> String {
    let mut out = String::new();
    write_node(&mut out, node, None, 0);
    out
}

pub(crate) fn pretty(node: &Node) -> String {
    let mut out = String::new();
    write_node(&mut out, node, Some(2), 0);
    out
}

fn newline(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_node(out: &mut String, node: &Node, indent: Option<usize>, level: usize) {
    match node {
        Node::Null => out.push_str("null"),
        Node::Bool(true) => out.push_str("true"),
        Node::Bool(false) => out.push_str("false"),
        Node::U64(v) => out.push_str(&v.to_string()),
        Node::I64(v) => out.push_str(&v.to_string()),
        Node::F64(v) => write_f64(out, *v),
        Node::String(s) => write_string(out, s),
        Node::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_node(out, item, indent, level + 1);
            }
            newline(out, indent, level);
            out.push(']');
        }
        Node::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_node(out, value, indent, level + 1);
            }
            newline(out, indent, level);
            out.push('}');
        }
    }
}

/// Shortest-roundtrip float formatting; always keeps a numeric JSON
/// token (Rust's `{:?}` already emits `1.0`-style for integral floats
/// and `1e20`-style only where exact).
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        // JSON has no non-finite literals; null is serde_json's lossy
        // convention too.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
