//! Uniform sampling for primitive types and ranges.

use crate::RngCore;

/// Types that can be sampled uniformly from an RNG's word stream
/// (the subset of rand's `Standard` distribution the workspace uses).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

impl StandardSample for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod uniform {
    use crate::RngCore;
    use core::ops::{Range, RangeInclusive};

    /// Ranges that `Rng::gen_range` accepts.
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let draw = ((rng.next_u64() as u128) % span) as $t;
                    self.start.wrapping_add(draw)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range in gen_range");
                    let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                    if span == 0 {
                        // Full-domain range: every word is valid.
                        return rng.next_u64() as $t;
                    }
                    let draw = ((rng.next_u64() as u128) % span) as $t;
                    start.wrapping_add(draw)
                }
            }
        )*};
    }

    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "empty range in gen_range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleRange;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = Counter(3);
        let mut saw_negative = false;
        for _ in 0..200 {
            let v: i64 = (-10i64..10).sample_single(&mut rng);
            assert!((-10..10).contains(&v));
            saw_negative |= v < 0;
        }
        assert!(saw_negative);
    }

    #[test]
    fn inclusive_singleton_works() {
        let mut rng = Counter(5);
        let v: u64 = (7u64..=7).sample_single(&mut rng);
        assert_eq!(v, 7);
    }
}
