//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace pins its determinism to seeded [`SeedableRng`]
//! implementations (see `rand_chacha`), so this vendored subset only
//! needs to be *self-consistent*, not bit-identical to upstream rand.
//! It provides the trait surface the workspace actually uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`, `fill`),
//! [`SeedableRng`] (`from_seed`, `seed_from_u64`), and [`thread_rng`].

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::SampleRange;
use distributions::StandardSample;

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (sized or not), matching upstream rand's `R: Rng + ?Sized`
/// caller idiom.
pub trait Rng: RngCore {
    /// Uniformly samples a value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniformly samples from a `Range`/`RangeInclusive`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, mirroring the
    /// upstream convenience constructor (values differ; determinism
    /// per seed is what matters).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A process-local generator seeded unpredictably (from the OS hasher
/// entropy); use seeded RNGs everywhere determinism matters.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Step(u64);
    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u64() as u8;
            }
        }
    }

    fn dyn_range(rng: &mut (impl Rng + ?Sized), n: usize) -> usize {
        rng.gen_range(0..n)
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Step(0);
        for _ in 0..100 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unsized_rng_callers_compile() {
        let mut rng = Step(7);
        assert!(dyn_range(&mut rng, 9) < 9);
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = Step(99);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn thread_rng_produces_values() {
        let mut rng = thread_rng();
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        // Not a determinism guarantee — just exercise the path.
        let _ = (a, b);
    }
}
