//! Slice helpers (subset of rand's `seq` module).

use crate::Rng;

pub trait SliceRandom {
    type Item;

    /// Uniformly picks one element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let idx = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[idx])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}
