//! Concrete generators shipped with the crate.

use crate::{RngCore, SeedableRng};
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// xoshiro-style 64-bit generator (xorshift64*): tiny, fast, and good
/// enough for the non-reproducible `thread_rng` path and as a cheap
/// seeded generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    fn from_u64(state: u64) -> SmallRng {
        SmallRng {
            // Never allow the all-zero fixed point.
            state: state | 1,
        }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SmallRng::from_u64(u64::from_le_bytes(seed))
    }
}

/// A per-call unpredictably-seeded generator; the stand-in for rand's
/// thread-local handle. Each `thread_rng()` call derives fresh state
/// from the std hasher's process entropy plus a global counter.
#[derive(Debug, Clone)]
pub struct ThreadRng {
    inner: SmallRng,
}

impl ThreadRng {
    pub(crate) fn new() -> ThreadRng {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let mut hasher = RandomState::new().build_hasher();
        hasher.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
        ThreadRng {
            inner: SmallRng::from_u64(hasher.finish()),
        }
    }
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}
