//! Offline stand-in for `criterion`: the API subset the bench targets
//! use, timing each closure with `Instant` and printing mean wall-clock
//! time per iteration. No statistics, plots, or baselines — just
//! enough to keep `cargo bench` runnable and the bench code honest.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted, not acted upon).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Declared throughput for a benchmark (accepted, printed as-is).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    sample_size: u64,
    /// (total elapsed, iterations) accumulated by `iter`.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One warm-up call outside the clock.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), self.sample_size));
    }

    /// Times `routine` on inputs produced by `setup`, excluding setup
    /// cost from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.result = Some((total, self.sample_size));
    }
}

/// A named family of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_one(&self.name, &id.to_string(), self.sample_size, f);
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&self.name, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
    }

    pub fn finish(self) {
        let _ = self.criterion;
    }
}

fn run_one(group: &str, id: &str, sample_size: u64, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size: sample_size.max(1),
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((elapsed, iters)) if iters > 0 => {
            let per_iter = elapsed / iters as u32;
            println!("bench {group}/{id}: {per_iter:?}/iter ({iters} iters)");
        }
        _ => println!("bench {group}/{id}: no measurement"),
    }
}

/// The harness entry point.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one("top", &id.to_string(), self.default_sample_size, f);
        self
    }

    /// Upstream-compatible configuration hook (accepted, unused).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
