//! Naive reference implementations of the ring operations and the
//! pre-optimization tick engine.
//!
//! [`NaiveRing`] transcribes the straightforward (allocating) versions
//! of the hot ring operations — `partition`-based arc splits, a
//! get-then-get_mut task pop — and [`NaiveSim`] the original
//! collect-per-worker tick loop. Two consumers keep them honest:
//!
//! * `tests/ring_reference.rs` differentially pins the optimized
//!   [`autobal_core::Ring`] against `NaiveRing` under random operation
//!   sequences (including wrap arcs), element order included, so the
//!   in-place split can never drift from the obvious implementation.
//! * `repro perf` runs `NaiveSim` and the optimized engine on the same
//!   pinned scenario in the same process, asserts tick-for-tick
//!   equality, and reports the measured speedup in `BENCH_10.json`.
//!
//! Nothing here is reachable from the simulator's production paths; it
//! is deliberately slow and simple.

use autobal_core::{Heterogeneity, SimConfig, StrategyKind, WorkMeasurement, Worker, WorkerId};
use autobal_id::{ring as arc, Id};
use autobal_stats::rng::{domains, substream, DetRng};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// One virtual node of the reference ring.
#[derive(Debug, Clone)]
pub struct NaiveVNode {
    pub owner: WorkerId,
    pub tasks: Vec<Id>,
}

/// The reference ring: same contract as [`autobal_core::Ring`], written
/// the allocating way. Shares the optimized ring's RNG constants so task
/// pops select identical elements.
#[derive(Debug, Clone)]
pub struct NaiveRing {
    map: BTreeMap<Id, NaiveVNode>,
    total_tasks: u64,
    pop_rng: u64,
}

impl Default for NaiveRing {
    fn default() -> NaiveRing {
        NaiveRing::new()
    }
}

impl NaiveRing {
    pub fn new() -> NaiveRing {
        NaiveRing {
            map: BTreeMap::new(),
            total_tasks: 0,
            pop_rng: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The original double-step pop index: advance xorshift64* state,
    /// reduce to `0..len`.
    fn next_pop_index(&mut self, len: usize) -> usize {
        debug_assert!(len > 0);
        let mut x = self.pop_rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.pop_rng = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % len as u64) as usize
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn total_tasks(&self) -> u64 {
        self.total_tasks
    }

    pub fn contains(&self, id: Id) -> bool {
        self.map.contains_key(&id)
    }

    pub fn load(&self, id: Id) -> u64 {
        self.map.get(&id).map_or(0, |v| v.tasks.len() as u64)
    }

    /// The exact task vector of one virtual node (order matters: the
    /// differential tests compare element-for-element).
    pub fn tasks(&self, id: Id) -> Option<&[Id]> {
        self.map.get(&id).map(|v| v.tasks.as_slice())
    }

    pub fn owner(&self, id: Id) -> Option<WorkerId> {
        self.map.get(&id).map(|v| v.owner)
    }

    /// All `(id, owner, tasks)` rows in ring order, for whole-ring
    /// equality assertions.
    pub fn rows(&self) -> Vec<(Id, WorkerId, Vec<Id>)> {
        self.map
            .iter()
            .map(|(id, v)| (*id, v.owner, v.tasks.clone()))
            .collect()
    }

    pub fn owner_of_key(&self, key: Id) -> Option<Id> {
        self.map
            .range(key..)
            .next()
            .map(|(id, _)| *id)
            .or_else(|| self.map.keys().next().copied())
    }

    pub fn successor_of(&self, id: Id) -> Option<Id> {
        if self.map.is_empty() {
            return None;
        }
        self.map
            .range((std::ops::Bound::Excluded(id), std::ops::Bound::Unbounded))
            .next()
            .map(|(i, _)| *i)
            .or_else(|| self.map.keys().next().copied())
    }

    /// The transcription of the pre-optimization `Ring::insert_vnode`:
    /// `partition` the successor's tasks into two fresh vectors.
    ///
    /// Errors are unit on purpose: the differential tests only compare
    /// ok/err against `Ring`'s `RingError`, never the error payload.
    #[allow(clippy::result_unit_err)]
    pub fn insert_vnode(&mut self, id: Id, owner: WorkerId) -> Result<u64, ()> {
        if self.map.contains_key(&id) {
            return Err(());
        }
        if self.map.is_empty() {
            self.map.insert(
                id,
                NaiveVNode {
                    owner,
                    tasks: Vec::new(),
                },
            );
            return Ok(0);
        }
        let succ_id = self.owner_of_key(id).expect("non-empty ring");
        let succ = self.map.get_mut(&succ_id).expect("successor exists");
        let (keep, give): (Vec<Id>, Vec<Id>) = succ
            .tasks
            .iter()
            .copied()
            .partition(|&k| arc::in_arc(id, succ_id, k));
        succ.tasks = keep;
        let acquired = give.len() as u64;
        self.map.insert(id, NaiveVNode { owner, tasks: give });
        Ok(acquired)
    }

    /// The transcription of the pre-optimization `Ring::remove_vnode`.
    ///
    /// Errors are unit on purpose: the differential tests only compare
    /// ok/err against `Ring`'s `RingError`, never the error payload.
    #[allow(clippy::result_unit_err)]
    pub fn remove_vnode(&mut self, id: Id) -> Result<(WorkerId, u64, Id), ()> {
        if !self.map.contains_key(&id) {
            return Err(());
        }
        if self.map.len() == 1 {
            let v = &self.map[&id];
            if v.tasks.is_empty() {
                let v = self.map.remove(&id).unwrap();
                return Ok((v.owner, 0, id));
            }
            return Err(());
        }
        let succ_id = self.successor_of(id).expect("len >= 2");
        let v = self.map.remove(&id).unwrap();
        let moved = v.tasks.len() as u64;
        let succ = self.map.get_mut(&succ_id).unwrap();
        succ.tasks.extend_from_slice(&v.tasks);
        Ok((v.owner, moved, succ_id))
    }

    /// Initial placement: the obvious per-key owner lookup (the
    /// optimized ring does one sorted sweep instead).
    pub fn assign_tasks(&mut self, keys: Vec<Id>) {
        assert!(!self.map.is_empty(), "assign_tasks on empty ring");
        let mut keys = keys;
        keys.sort_unstable();
        self.total_tasks += keys.len() as u64;
        for k in keys {
            let owner = self.owner_of_key(k).expect("non-empty ring");
            let node = self.map.get_mut(&owner).expect("owner exists");
            node.tasks.push(k);
        }
        // Match the optimized ring's integer-sorted task vectors.
        for v in self.map.values_mut() {
            v.tasks.sort_unstable();
        }
    }

    /// The transcription of the pre-optimization `Ring::pop_task`: look
    /// the node up once to measure, then again mutably to remove.
    pub fn pop_task(&mut self, id: Id) -> bool {
        let Some(v) = self.map.get(&id) else {
            return false;
        };
        let len = v.tasks.len();
        if len == 0 {
            return false;
        }
        let idx = self.next_pop_index(len);
        self.map.get_mut(&id).unwrap().tasks.swap_remove(idx);
        self.total_tasks -= 1;
        true
    }
}

/// What one [`NaiveSim`] run produces — the columns `repro perf`
/// compares against the optimized engine's [`autobal_core::RunResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveRunResult {
    pub ticks: u64,
    pub completed: bool,
    pub work_per_tick: Vec<u64>,
    pub churn_leaves: u64,
    pub churn_joins: u64,
    pub peak_vnodes: usize,
    pub series_gini: Vec<f64>,
    pub series_idle: Vec<usize>,
}

/// The pre-optimization tick engine, restricted to the strategies the
/// perf baseline needs (`None` and `Churn` — no Sybil layers). Every
/// hot-path allocation the optimization pass removed is preserved here:
/// the per-worker `vnodes().collect()`, the per-sample `active_loads()`
/// vector, and the partitioning ring operations above.
pub struct NaiveSim {
    cfg: SimConfig,
    ring: NaiveRing,
    workers: Vec<Worker>,
    waiting: Vec<WorkerId>,
    tick: u64,
    active_count: usize,
    rng_churn: DetRng,
    churn_leaves: u64,
    churn_joins: u64,
    work_history: Vec<u64>,
    peak_vnodes: usize,
    series_gini: Vec<f64>,
    series_idle: Vec<usize>,
}

impl NaiveSim {
    /// Mirrors `Sim::new`: identical substream usage, so a fixed seed
    /// produces the identical initial placement.
    pub fn new(cfg: SimConfig, seed: u64) -> NaiveSim {
        assert!(
            matches!(cfg.strategy, StrategyKind::None | StrategyKind::Churn),
            "NaiveSim only models the None/Churn engines"
        );
        cfg.validate().expect("invalid SimConfig");
        let mut placement = substream(seed, 0, domains::PLACEMENT);
        let mut tasks_rng = substream(seed, 0, domains::TASKS);
        let mut seen = BTreeSet::new();
        let mut node_ids = Vec::with_capacity(cfg.nodes);
        while node_ids.len() < cfg.nodes {
            let id = Id::random(&mut placement);
            if seen.insert(id) {
                node_ids.push(id);
            }
        }
        let task_keys: Vec<Id> = (0..cfg.tasks).map(|_| Id::random(&mut tasks_rng)).collect();

        let mut strength_rng = substream(seed, 0, domains::STRENGTH);
        let heterogeneous = cfg.heterogeneity == Heterogeneity::Heterogeneous;
        let draw_strength = |rng: &mut DetRng| -> u32 {
            if heterogeneous {
                rng.gen_range(1..=cfg.max_sybils.max(1))
            } else {
                1
            }
        };

        let mut ring = NaiveRing::new();
        let mut workers = Vec::with_capacity(cfg.nodes * 2);
        for id in node_ids {
            let s = draw_strength(&mut strength_rng);
            let widx = workers.len();
            workers.push(Worker::active(id, s));
            ring.insert_vnode(id, widx).expect("fresh position");
        }
        if cfg.virtual_nodes_per_worker > 1 {
            let mut statics_rng = substream(seed, 0, domains::STATICS);
            for (widx, w) in workers.iter_mut().enumerate() {
                for _ in 1..cfg.virtual_nodes_per_worker {
                    let pos = loop {
                        let p = Id::random(&mut statics_rng);
                        if !ring.contains(p) {
                            break p;
                        }
                    };
                    ring.insert_vnode(pos, widx).expect("fresh position");
                    w.statics.push(pos);
                }
            }
        }
        ring.assign_tasks(task_keys);
        let mut loads = vec![0u64; workers.len()];
        for (_, owner, tasks) in ring.rows() {
            loads[owner] += tasks.len() as u64;
        }
        for (w, &l) in workers.iter_mut().zip(&loads) {
            w.load = l;
        }

        let mut waiting = Vec::new();
        if cfg.churn_enabled() {
            for _ in 0..cfg.nodes {
                let s = draw_strength(&mut strength_rng);
                waiting.push(workers.len());
                workers.push(Worker::waiting(s));
            }
        }

        let active_count = cfg.nodes;
        let peak = ring.len();
        NaiveSim {
            cfg,
            ring,
            workers,
            waiting,
            tick: 0,
            active_count,
            rng_churn: substream(seed, 0, domains::CHURN),
            churn_leaves: 0,
            churn_joins: 0,
            work_history: Vec::new(),
            peak_vnodes: peak,
            series_gini: Vec::new(),
            series_idle: Vec::new(),
        }
    }

    fn remove_vnode_tracked(&mut self, pos: Id) {
        let Ok((owner, moved, succ)) = self.ring.remove_vnode(pos) else {
            return;
        };
        if moved > 0 {
            let succ_owner = self.ring.owner(succ).expect("successor");
            self.workers[owner].load -= moved;
            self.workers[succ_owner].load += moved;
        }
    }

    fn insert_vnode_tracked(&mut self, pos: Id, owner: WorkerId) {
        let acquired = self.ring.insert_vnode(pos, owner).expect("fresh position");
        if acquired > 0 {
            let victim_vnode = self.ring.successor_of(pos).expect("successor after split");
            let victim_owner = self.ring.owner(victim_vnode).expect("vnode");
            self.workers[victim_owner].load -= acquired;
            self.workers[owner].load += acquired;
        }
    }

    fn worker_leave(&mut self, idx: WorkerId) {
        let sybils = std::mem::take(&mut self.workers[idx].sybils);
        for s in sybils {
            self.remove_vnode_tracked(s);
        }
        let statics = std::mem::take(&mut self.workers[idx].statics);
        for s in statics {
            self.remove_vnode_tracked(s);
        }
        let primary = self.workers[idx].primary;
        self.remove_vnode_tracked(primary);
        self.workers[idx].state = autobal_core::WorkerState::Waiting;
        self.workers[idx].load = 0;
        self.active_count -= 1;
        self.waiting.push(idx);
        self.churn_leaves += 1;
    }

    fn worker_join(&mut self, idx: WorkerId) {
        self.workers[idx].state = autobal_core::WorkerState::Active;
        self.workers[idx].load = 0;
        let pos = loop {
            let p = Id::random(&mut self.rng_churn);
            if !self.ring.contains(p) {
                break p;
            }
        };
        self.insert_vnode_tracked(pos, idx);
        self.workers[idx].primary = pos;
        for _ in 1..self.cfg.virtual_nodes_per_worker {
            let pos = loop {
                let p = Id::random(&mut self.rng_churn);
                if !self.ring.contains(p) {
                    break p;
                }
            };
            self.insert_vnode_tracked(pos, idx);
            self.workers[idx].statics.push(pos);
        }
        self.active_count += 1;
        self.churn_joins += 1;
    }

    /// One churn pass, transcribed from `BackgroundChurn::on_tick` over
    /// the simulator's `ChurnOps` (same candidate order, same RNG draw
    /// per candidate).
    fn churn_tick(&mut self) {
        let leave_p = self.cfg.leave_probability();
        let join_p = self.cfg.join_probability();
        let candidates: Vec<WorkerId> = (0..self.workers.len())
            .filter(|&i| self.workers[i].is_active())
            .collect();
        for idx in candidates {
            if self.active_count <= 1 {
                break;
            }
            if self.rng_churn.gen::<f64>() <= leave_p {
                self.worker_leave(idx);
            }
        }
        for idx in std::mem::take(&mut self.waiting) {
            if self.rng_churn.gen::<f64>() <= join_p {
                self.worker_join(idx);
            } else {
                self.waiting.push(idx);
            }
        }
    }

    /// The original work phase: collect each worker's vnodes into a
    /// fresh vector, then drain up to capacity.
    fn step(&mut self) -> u64 {
        self.tick += 1;
        if self.cfg.churn_enabled() {
            self.churn_tick();
        }
        let strength_based = self.cfg.work_measurement == WorkMeasurement::StrengthPerTick;
        let mut consumed = 0u64;
        for idx in 0..self.workers.len() {
            if !self.workers[idx].is_active() {
                continue;
            }
            let mut cap = self.workers[idx].capacity(strength_based);
            if cap == 0 || self.workers[idx].load == 0 {
                continue;
            }
            let vnodes: Vec<Id> = self.workers[idx].vnodes().collect();
            'outer: for v in vnodes {
                while cap > 0 && self.ring.pop_task(v) {
                    cap -= 1;
                    consumed += 1;
                    self.workers[idx].load -= 1;
                    if self.workers[idx].load == 0 {
                        break 'outer;
                    }
                }
                if cap == 0 {
                    break;
                }
            }
        }
        self.work_history.push(consumed);
        self.peak_vnodes = self.peak_vnodes.max(self.ring.len());
        consumed
    }

    /// The original series sample: collect the active loads into a
    /// fresh vector, then compute Gini over the unsorted copy.
    fn sample_series(&mut self) {
        let loads: Vec<u64> = self
            .workers
            .iter()
            .filter(|w| w.is_active())
            .map(|w| w.load)
            .collect();
        self.series_gini.push(autobal_stats::gini(&loads));
        self.series_idle
            .push(loads.iter().filter(|&&l| l == 0).count());
    }

    /// Runs to completion (or the tick cap), mirroring `Sim::run`'s
    /// sampling schedule.
    pub fn run(mut self) -> NaiveRunResult {
        let series_every = self.cfg.series_interval;
        if series_every.is_some() {
            self.sample_series();
        }
        let cap = self.cfg.effective_max_ticks();
        while self.ring.total_tasks() > 0 && self.tick < cap {
            self.step();
            if let Some(k) = series_every {
                if self.tick.is_multiple_of(k) || self.ring.total_tasks() == 0 {
                    self.sample_series();
                }
            }
        }
        let completed = self.ring.total_tasks() == 0;
        NaiveRunResult {
            ticks: self.tick,
            completed,
            work_per_tick: self.work_history,
            churn_leaves: self.churn_leaves,
            churn_joins: self.churn_joins,
            peak_vnodes: self.peak_vnodes,
            series_gini: self.series_gini,
            series_idle: self.series_idle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u128) -> Id {
        Id::from(v)
    }

    #[test]
    fn naive_ring_basics_match_expectations() {
        let mut r = NaiveRing::new();
        r.insert_vnode(id(100), 0).unwrap();
        r.insert_vnode(id(300), 1).unwrap();
        r.assign_tasks(vec![id(150), id(250), id(280), id(350), id(50)]);
        assert_eq!(r.load(id(300)), 3);
        assert_eq!(r.load(id(100)), 2, "wrap arc holds 350 and 50");
        let got = r.insert_vnode(id(260), 9).unwrap();
        assert_eq!(got, 2);
        assert_eq!(r.total_tasks(), 5);
        assert!(r.pop_task(id(260)));
        assert_eq!(r.total_tasks(), 4);
        let (_, moved, succ) = r.remove_vnode(id(260)).unwrap();
        assert_eq!(moved, 1);
        assert_eq!(succ, id(300));
    }

    #[test]
    fn naive_sim_none_baseline_runs() {
        let cfg = SimConfig {
            nodes: 50,
            tasks: 2_000,
            ..SimConfig::default()
        };
        let res = NaiveSim::new(cfg, 1).run();
        assert!(res.completed);
        assert_eq!(res.work_per_tick.iter().sum::<u64>(), 2_000);
    }

    #[test]
    #[should_panic(expected = "None/Churn")]
    fn naive_sim_rejects_sybil_strategies() {
        let cfg = SimConfig {
            nodes: 10,
            tasks: 100,
            strategy: StrategyKind::RandomInjection,
            ..SimConfig::default()
        };
        let _ = NaiveSim::new(cfg, 1);
    }
}
