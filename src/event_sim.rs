//! The **event-time substrate**: the paper's strategies running on the
//! asynchronous Chord overlay, racing stabilization.
//!
//! [`protocol_sim`](crate::protocol_sim) closed the gap between the
//! oracle ring and the real protocol state machine, but it still
//! dispatches strategy actions through a synchronous shim: every load
//! probe, invitation, and Sybil join resolves instantly, between ticks.
//! This module removes that last idealization. The same trait-object
//! [`StrategyStack`] runs here unmodified, but its observable actions
//! become real messages on the [`EventNet`] priority queue:
//!
//! * `query_load` sends an [`AppMsg::LoadQuery`] over the wire and
//!   blocks the check until the reply, a [`AppMsg::Nack`] bounce, or a
//!   probe timeout comes back — mapped to
//!   [`ActionError::Unreachable`] / [`ActionError::TimedOut`].
//! * `invite` announces to each listed predecessor as a separate wire
//!   message and harvests the `InviteReply`s that survive.
//! * Sybil joins and churn rejoins first resolve their position with a
//!   real tracked wire lookup (riding the existing retry budget), then
//!   hand off keys through the synchronous [`Network`] state machine.
//! * Strategy check cadence is a **timer event**: each check tick
//!   schedules one `CHECK` timer per active worker plus a `POSTCHECK`
//!   work/maintenance timer, so checks interleave with stabilize,
//!   notify, and finger-refresh traffic instead of running between
//!   ticks. Timers that fire while an action is blocked are deferred
//!   in FIFO order, which is exactly the synchronous dispatch order
//!   when latency is zero.
//!
//! Division of labor: the embedded [`Network`] is the **authoritative
//! state machine** (key placement, successor lists, replication — what
//! strategies read and what the work phase consumes), while the
//! [`EventNet`] is the **wire** (latency, loss, partitions,
//! duplication, retry budgets — what strategy traffic must survive).
//! Membership changes are mirrored into both on the spot; how fast the
//! *wire* learns about them is stabilization's problem, which is the
//! phenomenon under study. The network's own fault plan stays inert
//! here — adversity lives on the wire, plus the substrate-level crash
//! plane shared with the protocol substrate.
//!
//! **Correctness anchor:** under a *degenerate* configuration — zero
//! latency, inert faults — every reply arrives before the next
//! deferred timer fires, and ground-truth rewiring after each
//! membership change stands in for "stabilize before check". The
//! decision trace is then bit-for-bit identical to
//! [`run_protocol_sim`](crate::protocol_sim::run_protocol_sim) on the
//! same seed (`autobal-trace diff` reports no causal divergence).
//! Under real latency, divergence is the measurement, not a bug.

use autobal_chord::{
    AdversaryState, AppEvent, AppMsg, AsyncLookup, EventConfig, EventNet, MessageStats, Network,
    NetworkError,
};
use autobal_core::strategy::{
    churn::BackgroundChurn,
    crosscheck::wrap_if_enabled,
    invitation::{pick_helper, HelperCandidate},
    strategy_for, ActionError, Actions, ChurnOps, InviteOutcome, LocalView, Strategy,
    StrategyParams, StrategyStack, Substrate,
};
use autobal_core::trace::{EventLog, SimEvent};
use autobal_core::StrategyKind;
use autobal_id::{ring, Id};
use autobal_metrics::{names as metric_names, MetricsHub, MetricsSample, MetricsSink, RingSlot};
use autobal_stats::rng::{domains, substream, DetRng};
use autobal_telemetry::{MessageStatus, Trace, TraceSink};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::protocol_sim::fate_metric;
pub use crate::protocol_sim::ProtocolSimConfig;

/// Substrate timer tokens: the top two bits carry the kind, the low 62
/// the payload (worker index for `CHECK`, request id for probes).
const TAG_SHIFT: u32 = 62;
/// Probe deadline; payload is the request id the probe is waiting on.
const TAG_PROBE: u64 = 0;
/// Tick boundary: churn, crash plane, check scheduling, work phase.
const TAG_TICK: u64 = 1;
/// One worker's strategy check; payload is the worker index.
const TAG_CHECK: u64 = 2;
/// End-of-sweep work phase + maintenance on check ticks.
const TAG_POSTCHECK: u64 = 3;

fn token(tag: u64, payload: u64) -> u64 {
    (tag << TAG_SHIFT) | payload
}

/// Configuration for an event-time run: the protocol-level knobs plus
/// the wire's timing model.
#[derive(Debug, Clone)]
pub struct EventSimConfig {
    /// Strategy, workload, churn, crash, and fault knobs — identical
    /// meaning to the synchronous protocol substrate. `proto.fault` is
    /// armed on the *wire* (crash events excepted: those stay on the
    /// substrate-level schedule, exactly as in the protocol run), and
    /// its partition/crash times are interpreted in **event time**.
    pub proto: ProtocolSimConfig,
    /// Wire timing: per-message latency, stabilize cadence, lookup
    /// timeout. `latency: 0` with an inert `proto.fault` selects the
    /// degenerate mode that reproduces the synchronous decision trace.
    pub event: EventConfig,
    /// Event-time units per simulator tick. Ticks *stretch* when a
    /// check sweep blocks on slow probes — the tick timer fires on
    /// schedule but is deferred behind the sweep, so task consumption
    /// genuinely waits for strategy traffic.
    pub tick_len: u64,
    /// How long a load probe or invitation round waits for replies
    /// before the action resolves as [`ActionError::TimedOut`]. Must
    /// exceed one round trip to be useful.
    pub probe_timeout: u64,
}

impl Default for EventSimConfig {
    fn default() -> Self {
        EventSimConfig {
            proto: ProtocolSimConfig::default(),
            event: EventConfig::default(),
            // One stabilize period per tick: maintenance traffic and
            // strategy cadence genuinely interleave.
            tick_len: 100,
            // Generous multiple of the default round trip (2 × 10), so
            // only loss or partitions produce probe timeouts.
            probe_timeout: 400,
        }
    }
}

/// Result of an event-time run. Superset of the protocol run report:
/// adds the wire plane (event clock, wire message bill, lookup-latency
/// tail) and the per-worker task counts the decision-quality table
/// computes Gini over.
#[derive(Debug, Clone)]
pub struct EventRun {
    /// Simulator ticks executed (work-phase opportunities).
    pub ticks: u64,
    pub ideal_ticks: u64,
    pub runtime_factor: f64,
    pub completed: bool,
    /// Final event-time clock. `time / ticks` exceeds `tick_len` when
    /// strategy traffic stalled the tick timer.
    pub time: u64,
    /// Synchronous state-machine bill: joins, key handoffs,
    /// replication — same meaning as the protocol run.
    pub messages: MessageStats,
    /// Wire bill: routing hops, stabilize/notify traffic, and the
    /// strategy vocabulary (`load_query`, `invitation`) that here
    /// rides the real queue. `wire.strategy_overhead()` isolates the
    /// balancing cost.
    pub wire: MessageStats,
    /// Events processed by the wire's queue over the whole run.
    pub wire_events: u64,
    pub sybils_created: u64,
    pub sybils_retired: u64,
    pub tasks_lost: u64,
    pub workers_crashed: u64,
    /// Keys still unconsumed at exit (0 iff `completed`).
    pub tasks_remaining: u64,
    /// Tasks consumed per worker slot — the Gini input.
    pub tasks_done: Vec<u64>,
    /// Completed wire lookup latencies (joins + finger refreshes), in
    /// event-time units, completion order. Empty at zero latency.
    pub lookup_latencies: Vec<u64>,
    /// Wire lookups that exhausted their retry budget.
    pub lookup_timeouts: u64,
    pub events: EventLog,
    pub trace: Trace,
    /// Streaming metrics samples (empty unless
    /// [`ProtocolSimConfig::record_metrics`]). Sample times are the
    /// **event clock**, not ticks.
    pub metrics: Vec<MetricsSample>,
}

/// One physical worker: its primary Chord node plus live Sybil nodes.
struct EWorker {
    primary: Id,
    sybils: Vec<Id>,
    active: bool,
}

impl EWorker {
    fn vnodes(&self) -> impl Iterator<Item = Id> + '_ {
        std::iter::once(self.primary)
            .chain(self.sybils.iter().copied())
            .filter(|_| self.active)
    }
}

/// The [`Substrate`] over the asynchronous overlay. State queries read
/// the synchronous network; observable actions block on real wire
/// round trips.
struct EventSubstrate {
    net: Network,
    wire: EventNet,
    workers: Vec<EWorker>,
    waiting: Vec<usize>,
    owner_of: BTreeMap<Id, usize>,
    params: StrategyParams,
    max_sybils: u32,
    active_count: usize,
    tick: u64,
    probe_timeout: u64,
    /// Zero latency + inert faults: rewire the wire's routing tables
    /// to ground truth after every membership change, standing in for
    /// "stabilization finished before the next check".
    degenerate: bool,
    /// Substrate timers that fired while an action was blocked on the
    /// wire, replayed FIFO by the driver. At zero latency this FIFO
    /// replay *is* the synchronous dispatch order.
    deferred: VecDeque<u64>,
    /// Remaining substrate-level crash events, `(tick, victims)`.
    crash_schedule: VecDeque<(u64, u32)>,
    rng_strategy: DetRng,
    rng_churn: DetRng,
    rng_faults: DetRng,
    sybils_created: u64,
    sybils_retired: u64,
    tasks_lost: u64,
    workers_crashed: u64,
    crash_retirement: bool,
    /// Armed Byzantine adversary: decides per owner whether a load
    /// reply is distorted. Stateless at query time, so the same reply
    /// lies identically here and on the synchronous shim.
    adversary: AdversaryState,
    tasks_done: Vec<u64>,
    lookup_latencies: Vec<u64>,
    lookup_timeouts: u64,
    events: EventLog,
    trace: Trace,
    /// Streaming metrics recorder; free when disabled.
    hub: MetricsHub,
    /// Metrics sampling cadence in ticks (None = metrics off).
    metrics_every: Option<u64>,
    /// Cumulative quarantine decisions against each worker, for the
    /// ring snapshot's quarantine markers.
    quarantined_marks: Vec<u64>,
}

impl EventSubstrate {
    /// Same `decision_fields` encoding as the other substrates, stamped
    /// with the **tick** (not the event clock) so same-seed decision
    /// traces are comparable across substrates.
    fn emit_event(&mut self, event: SimEvent) {
        if self.trace.enabled() {
            let (name, worker, pos, value) = event.decision_fields();
            self.trace.decision(self.tick, name, worker, &pos, value);
        }
        if self.hub.enabled() {
            let (name, value) = event.metric_fields();
            self.hub.event(name, value);
        }
        self.events.push(event);
    }

    /// Snapshot the metrics registry plus a batch fairness sweep over
    /// the current per-worker loads (the byte-identical twin of the
    /// protocol substrate's sampler), stamped with the event clock.
    fn sample_metrics(&mut self) {
        if !self.hub.enabled() {
            return;
        }
        let vnodes: usize = self
            .workers
            .iter()
            .filter(|w| w.active)
            .map(|w| 1 + w.sybils.len())
            .sum();
        self.hub.set_gauge(metric_names::VNODES, vnodes as u64);
        self.hub
            .set_gauge(metric_names::TASKS_REMAINING, self.net.total_keys() as u64);
        let mut loads = self.hub.take_scratch();
        let mut ring = Vec::new();
        for w in 0..self.workers.len() {
            let Some(worker) = self.workers.get(w) else {
                continue;
            };
            if !worker.active {
                continue;
            }
            let load = self.worker_load(w);
            loads.push(load);
            if self.hub.ring_enabled() {
                ring.push(RingSlot {
                    worker: w as u64,
                    pos: worker.primary.to_hex(),
                    load,
                    sybils: worker.sybils.len() as u64,
                    quarantined: self.quarantined_marks.get(w).copied().unwrap_or(0),
                });
            }
        }
        let now = self.wire.now();
        self.hub.sample_batch(now, &mut loads, ring);
        self.hub.put_scratch(loads);
    }

    /// Samples on the configured tick cadence (called after each
    /// completed work phase) and at job completion.
    fn maybe_sample_metrics(&mut self) {
        let Some(k) = self.metrics_every else {
            return;
        };
        if self.tick.is_multiple_of(k) || self.net.total_keys() == 0 {
            self.sample_metrics();
        }
    }

    fn worker_load(&self, w: usize) -> u64 {
        self.workers
            .get(w)
            .into_iter()
            .flat_map(|p| p.vnodes())
            .filter_map(|v| self.net.node(v))
            .map(|n| n.keys.len() as u64)
            .sum()
    }

    fn worker_can_spawn(&self, w: usize) -> bool {
        let Some(p) = self.workers.get(w) else {
            return false;
        };
        p.active
            && self.worker_load(w) <= self.params.sybil_threshold
            && (p.sybils.len() as u32) < self.max_sybils
    }

    fn rewire_if_degenerate(&mut self) {
        if self.degenerate {
            self.wire.rewire_ground_truth();
        }
    }

    /// The load value vnode `reporter` actually puts on the wire: the
    /// truth unless its owner is Byzantine, in which case the distorted
    /// value is billed to the wire's `lied` meta-counter and recorded
    /// as a `lied` decision — at *serve* time, exactly when the
    /// synchronous shim would record it, so degenerate decision streams
    /// stay bit-for-bit comparable. `about` is the vnode the answer
    /// describes (the reporter itself for direct probes).
    fn reported_load(&mut self, reporter: Id, about: Id, true_load: u64) -> u64 {
        let tick = self.tick;
        let lie = self
            .owner_of
            .get(&reporter)
            .copied()
            .and_then(|o| self.adversary.lie(o, true_load, tick).map(|l| (o, l)));
        let Some((owner, reported)) = lie else {
            return true_load;
        };
        self.wire.stats.lied += 1;
        self.emit_event(SimEvent::LoadLied {
            tick,
            worker: owner,
            about,
            reported,
        });
        reported
    }

    /// Files a timer that surfaced mid-drain: `CHECK`/`POSTCHECK`/
    /// `TICK` tokens are deferred for the driver; stale probe
    /// deadlines (their probe already resolved) are discarded.
    fn defer_timer(&mut self, tok: u64) {
        if tok >> TAG_SHIFT != TAG_PROBE {
            self.deferred.push_back(tok);
        }
    }

    /// Answers an application *request* arriving at vnode `at`;
    /// replies without a waiting drain are stale and ignored.
    fn serve_if_request(&mut self, at: Id, from: Id, req: u64, msg: AppMsg) {
        match msg {
            AppMsg::LoadQuery => {
                let reply = match self.net.node(at).map(|n| n.keys.len() as u64) {
                    Some(true_load) => AppMsg::LoadReply {
                        load: self.reported_load(at, at, true_load),
                    },
                    None => AppMsg::Nack,
                };
                self.wire.reply_app(at, from, req, reply);
            }
            AppMsg::LoadQueryAbout { target } => {
                // The relay answers from its replica knowledge of the
                // target's key range; a Byzantine *relay* distorts it.
                let reply = match self.net.node(target).map(|n| n.keys.len() as u64) {
                    Some(true_load) => AppMsg::LoadReply {
                        load: self.reported_load(at, target, true_load),
                    },
                    None => AppMsg::Nack,
                };
                self.wire.reply_app(at, from, req, reply);
            }
            AppMsg::Invitation { inviter } => {
                // Mirror of the synchronous candidate filter: the
                // answering owner volunteers iff it is not the inviter
                // and has spawn capacity, and quotes its current load.
                let reply = match self.owner_of.get(&at).copied() {
                    Some(o) if o as u64 != inviter => AppMsg::InviteReply {
                        can: self.worker_can_spawn(o),
                        load: self.worker_load(o),
                    },
                    _ => AppMsg::InviteReply {
                        can: false,
                        load: 0,
                    },
                };
                self.wire.reply_app(at, from, req, reply);
            }
            AppMsg::LoadReply { .. } | AppMsg::InviteReply { .. } | AppMsg::Nack => {}
        }
    }

    /// Drains the wire until the tracked join lookup `req` completes
    /// (success or retry-budget exhaustion — the wire always resolves
    /// a watched lookup). Protocol traffic and other nodes' requests
    /// are handled inline; substrate timers are deferred.
    fn await_join(&mut self, req: u64) -> Option<AsyncLookup> {
        loop {
            let ev = self.wire.run_until_app(u64::MAX)?;
            match ev {
                AppEvent::LookupDone(l) if l.req == req => return Some(l),
                AppEvent::LookupDone(_) => {}
                AppEvent::Timer { token } => self.defer_timer(token),
                AppEvent::Msg {
                    at,
                    from,
                    req: r,
                    msg,
                } => self.serve_if_request(at, from, r, msg),
            }
        }
    }

    /// A Sybil join for `w` at `pos`: the position is first resolved by
    /// a real tracked wire lookup (latency, loss, and the retry budget
    /// all apply), then the synchronous network performs the
    /// authoritative key handoff.
    fn spawn_sybil_as(&mut self, w: usize, pos: Id) -> Result<u64, ActionError> {
        let Some(contact) = self.workers.get(w).map(|p| p.primary) else {
            return Err(ActionError::Unreachable);
        };
        let tick = self.tick;
        if self.net.node(pos).is_some() {
            // An occupied position still means the join reached the
            // ring — the synchronous substrate's DuplicateId path.
            self.trace
                .message(tick, "join", MessageStatus::Delivered, 0);
            self.hub.message(metric_names::MSG_DELIVERED, 0);
            return Err(ActionError::Occupied);
        }
        let retries_before = self.wire.stats.retries;
        let Some(req) = self.wire.join_tracked(pos, contact) else {
            self.trace
                .message(tick, "join", MessageStatus::Unreachable, 0);
            self.hub.message(metric_names::MSG_UNREACHABLE, 0);
            return Err(ActionError::Unreachable);
        };
        let owner = self.await_join(req).and_then(|l| l.owner);
        let retries = self.wire.stats.retries - retries_before;
        if owner.is_none() {
            // The wire never resolved the position: undo the half-join
            // so wire and network membership stay mirrored.
            self.wire.fail(pos);
            self.trace
                .message(tick, "join", MessageStatus::TimedOut, retries);
            self.hub.message(metric_names::MSG_TIMED_OUT, retries);
            return Err(ActionError::TimedOut);
        }
        let joined = self.net.join_with_retry(pos, contact);
        let status = match &joined {
            Ok(()) | Err(NetworkError::DuplicateId(_)) => MessageStatus::Delivered,
            Err(NetworkError::TimedOut { .. }) => MessageStatus::TimedOut,
            Err(
                NetworkError::EmptyNetwork
                | NetworkError::UnknownNode(_)
                | NetworkError::LookupFailed { .. },
            ) => MessageStatus::Unreachable,
        };
        self.trace.message(tick, "join", status, retries);
        self.hub.message(fate_metric(status), retries);
        match joined {
            Ok(()) => {}
            Err(e) => {
                self.wire.fail(pos);
                return Err(match e {
                    NetworkError::DuplicateId(_) => ActionError::Occupied,
                    NetworkError::TimedOut { .. } => ActionError::TimedOut,
                    NetworkError::EmptyNetwork
                    | NetworkError::UnknownNode(_)
                    | NetworkError::LookupFailed { .. } => ActionError::Unreachable,
                });
            }
        }
        self.rewire_if_degenerate();
        let acquired = self.net.node(pos).map(|n| n.keys.len() as u64).unwrap_or(0);
        if let Some(p) = self.workers.get_mut(w) {
            p.sybils.push(pos);
        }
        self.owner_of.insert(pos, w);
        self.sybils_created += 1;
        self.emit_event(SimEvent::SybilCreated {
            tick,
            worker: w,
            pos,
            acquired,
        });
        Ok(acquired)
    }

    fn retire_sybils_of(&mut self, w: usize) {
        let sybils = match self.workers.get_mut(w) {
            Some(p) => std::mem::take(&mut p.sybils),
            None => return,
        };
        let n = sybils.len() as u64;
        for s in sybils {
            if self.crash_retirement {
                if let Ok(rep) = self.net.fail(s) {
                    self.tasks_lost += rep.keys_lost;
                }
            } else {
                self.leave_expecting_gone(s);
            }
            // The wire has no graceful-leave vocabulary: a retiring
            // Sybil simply stops answering and stabilization routes
            // around it.
            self.wire.fail(s);
            self.owner_of.remove(&s);
        }
        self.sybils_retired += n;
        if n > 0 {
            self.rewire_if_degenerate();
            let tick = self.tick;
            self.emit_event(SimEvent::SybilsRetired {
                tick,
                worker: w,
                count: n as u32,
            });
        }
    }

    /// Crash-fails one whole worker on both planes; never returns.
    fn crash_worker(&mut self, w: usize) -> u64 {
        let mut lost = 0;
        if let Some(p) = self.workers.get(w) {
            for v in p.vnodes() {
                if let Ok(rep) = self.net.fail(v) {
                    lost += rep.keys_lost;
                }
                self.wire.fail(v);
                self.owner_of.remove(&v);
            }
        }
        if let Some(p) = self.workers.get_mut(w) {
            p.sybils.clear();
            p.active = false;
        }
        self.active_count = self.active_count.saturating_sub(1);
        self.workers_crashed += 1;
        self.tasks_lost += lost;
        self.rewire_if_degenerate();
        let tick = self.tick;
        self.emit_event(SimEvent::WorkerCrashed {
            tick,
            worker: w,
            keys_lost: lost,
        });
        lost
    }

    /// Crashes up to `count` uniformly chosen active workers, sparing
    /// at least one — the same victim stream as the protocol run.
    fn apply_crashes(&mut self, count: u32) {
        for _ in 0..count {
            if self.active_count <= 1 {
                return;
            }
            let k = self.rng_faults.gen_range(0..self.active_count);
            let Some(w) = self
                .workers
                .iter()
                .enumerate()
                .filter(|(_, p)| p.active)
                .map(|(i, _)| i)
                .nth(k)
            else {
                return;
            };
            self.crash_worker(w);
        }
    }

    /// Work phase: each active worker consumes one task from its
    /// vnodes (primary first, then Sybils) — identical to the
    /// protocol substrate, plus per-worker accounting for Gini.
    fn work_phase(&mut self) {
        let mut consumed = 0u64;
        for w in 0..self.workers.len() {
            let Some(p) = self.workers.get(w) else {
                continue;
            };
            let mut popped = false;
            for v in p.vnodes() {
                popped = self
                    .net
                    .node_mut(v)
                    .and_then(|n| n.keys.pop_first())
                    .is_some();
                if popped {
                    break;
                }
            }
            if popped {
                consumed += 1;
                if let Some(t) = self.tasks_done.get_mut(w) {
                    *t += 1;
                }
            }
        }
        self.hub.add(metric_names::TASKS_DONE, consumed);
    }

    /// Harvests completed wire lookups into the latency tail.
    fn drain_lookups(&mut self) {
        for l in self.wire.take_completed() {
            if l.owner.is_some() {
                self.lookup_latencies.push(l.latency);
            } else {
                self.lookup_timeouts += 1;
            }
        }
    }

    /// Gracefully leaves `id`, tolerating only "already gone": under
    /// crash faults a node can vanish before its owner retires it.
    /// Anything else would be an ownership-bookkeeping bug, which the
    /// debug builds refuse to paper over.
    fn leave_expecting_gone(&mut self, id: Id) {
        if let Err(e) = self.net.leave(id) {
            debug_assert!(
                matches!(e, NetworkError::UnknownNode(_)),
                "graceful leave failed structurally: {e:?}"
            );
        }
    }
}

impl Substrate for EventSubstrate {
    fn decision_order(&self) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, p)| p.active)
            .map(|(i, _)| i)
            .collect()
    }

    fn check_worker(&mut self, w: usize, strategy: &dyn Strategy) {
        let span = self.trace.open_span(self.tick, strategy.name(), w as u64);
        let mut ctx = EventNodeCtx {
            sub: self,
            worker: w,
        };
        strategy.check_node(&mut ctx);
        let tick = self.tick;
        self.trace.close_span(tick, span);
    }

    fn check_omniscient(&mut self, _strategy: &dyn Strategy) -> bool {
        // Event time is even less omniscient than the protocol shim.
        false
    }

    fn churn_ops(&mut self) -> &mut dyn ChurnOps {
        self
    }
}

impl ChurnOps for EventSubstrate {
    fn leave_candidates(&self) -> Vec<usize> {
        self.decision_order()
    }

    fn active_count(&self) -> usize {
        self.active_count
    }

    fn flip(&mut self, p: f64) -> bool {
        self.rng_churn.gen::<f64>() <= p
    }

    fn depart(&mut self, w: usize) {
        let sybils = match self.workers.get_mut(w) {
            Some(p) => std::mem::take(&mut p.sybils),
            None => return,
        };
        for s in sybils {
            self.leave_expecting_gone(s);
            self.wire.fail(s);
            self.owner_of.remove(&s);
        }
        let Some(primary) = self.workers.get(w).map(|p| p.primary) else {
            return;
        };
        self.leave_expecting_gone(primary);
        self.wire.fail(primary);
        self.owner_of.remove(&primary);
        if let Some(p) = self.workers.get_mut(w) {
            p.active = false;
        }
        self.active_count = self.active_count.saturating_sub(1);
        self.waiting.push(w);
        self.rewire_if_degenerate();
        let tick = self.tick;
        self.emit_event(SimEvent::WorkerLeft { tick, worker: w });
    }

    fn take_waiting(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.waiting)
    }

    fn requeue_waiting(&mut self, w: usize) {
        self.waiting.push(w);
    }

    fn rejoin(&mut self, w: usize) {
        let Some(contact) = self.workers.iter().find(|p| p.active).map(|p| p.primary) else {
            self.waiting.push(w);
            return;
        };
        let pos = loop {
            let p = Id::random(&mut self.rng_churn);
            if self.net.node(p).is_none() {
                break p;
            }
        };
        let tick = self.tick;
        let retries_before = self.wire.stats.retries;
        let resolved = match self.wire.join_tracked(pos, contact) {
            Some(req) => self.await_join(req).and_then(|l| l.owner).is_some(),
            None => false,
        };
        let (ok, status) = if resolved {
            let joined = self.net.join_with_retry(pos, contact);
            let status = match &joined {
                Ok(()) => MessageStatus::Delivered,
                Err(NetworkError::TimedOut { .. }) => MessageStatus::TimedOut,
                Err(
                    NetworkError::DuplicateId(_)
                    | NetworkError::EmptyNetwork
                    | NetworkError::UnknownNode(_)
                    | NetworkError::LookupFailed { .. },
                ) => MessageStatus::Unreachable,
            };
            if joined.is_err() {
                self.wire.fail(pos);
            }
            (joined.is_ok(), status)
        } else {
            self.wire.fail(pos);
            (false, MessageStatus::TimedOut)
        };
        let retries = self.wire.stats.retries - retries_before;
        self.trace.message(tick, "join", status, retries);
        self.hub.message(fate_metric(status), retries);
        if !ok {
            // A worker whose join dies on the wire stays in the
            // waiting pool and tries again next tick.
            self.waiting.push(w);
            return;
        }
        if let Some(slot) = self.workers.get_mut(w) {
            *slot = EWorker {
                primary: pos,
                sybils: Vec::new(),
                active: true,
            };
        }
        self.owner_of.insert(pos, w);
        self.active_count += 1;
        self.rewire_if_degenerate();
        let acquired = self.net.node(pos).map(|n| n.keys.len() as u64).unwrap_or(0);
        self.emit_event(SimEvent::WorkerJoined {
            tick,
            worker: w,
            pos,
            acquired,
        });
    }
}

/// One worker's [`LocalView`]/[`Actions`] window. State reads mirror
/// the protocol substrate; actions are real wire round trips.
struct EventNodeCtx<'a> {
    sub: &'a mut EventSubstrate,
    worker: usize,
}

impl LocalView for EventNodeCtx<'_> {
    fn params(&self) -> StrategyParams {
        self.sub.params
    }

    fn load(&self) -> u64 {
        self.sub.worker_load(self.worker)
    }

    fn sybil_count(&self) -> usize {
        self.sub
            .workers
            .get(self.worker)
            .map(|p| p.sybils.len())
            .unwrap_or(0)
    }

    fn sybil_slots_left(&self) -> u32 {
        self.sub
            .max_sybils
            .saturating_sub(self.sybil_count() as u32)
    }

    fn primary(&self) -> Id {
        self.sub
            .workers
            .get(self.worker)
            .map(|p| p.primary)
            .unwrap_or(Id::ZERO)
    }

    fn own_vnode_loads(&self) -> Vec<(Id, u64)> {
        self.sub
            .workers
            .get(self.worker)
            .into_iter()
            .flat_map(|p| p.vnodes())
            .map(|v| {
                (
                    v,
                    self.sub
                        .net
                        .node(v)
                        .map(|n| n.keys.len() as u64)
                        .unwrap_or(0),
                )
            })
            .collect()
    }

    fn successor_list(&self) -> Vec<Id> {
        let primary = self.primary();
        let k = self.sub.params.num_neighbors;
        self.sub
            .net
            .node(primary)
            .map(|n| {
                n.successors
                    .iter()
                    .copied()
                    .filter(|&s| s != primary)
                    .take(k)
                    .collect()
            })
            .unwrap_or_default()
    }
}

impl Actions for EventNodeCtx<'_> {
    /// A real round trip: `LoadQuery` out, then the check **blocks**
    /// draining the wire until the reply, a dead-node `Nack`, or the
    /// probe deadline. Stabilization traffic keeps flowing while we
    /// wait — that is the race the paper's strategies live in.
    fn query_load(&mut self, neighbor: Id) -> Result<u64, ActionError> {
        let tick = self.sub.tick;
        let primary = self.primary();
        let req = self.sub.wire.send_app(primary, neighbor, AppMsg::LoadQuery);
        let deadline = token(TAG_PROBE, req);
        let at = self.sub.wire.now() + self.sub.probe_timeout;
        self.sub.wire.schedule_app_timer(at, deadline);
        loop {
            let Some(ev) = self.sub.wire.run_until_app(u64::MAX) else {
                self.sub
                    .trace
                    .message(tick, "load_query", MessageStatus::TimedOut, 0);
                self.sub.hub.message(metric_names::MSG_TIMED_OUT, 0);
                return Err(ActionError::TimedOut);
            };
            match ev {
                AppEvent::Timer { token: t } if t == deadline => {
                    self.sub
                        .trace
                        .message(tick, "load_query", MessageStatus::TimedOut, 0);
                    self.sub.hub.message(metric_names::MSG_TIMED_OUT, 0);
                    return Err(ActionError::TimedOut);
                }
                AppEvent::Timer { token: t } => self.sub.defer_timer(t),
                AppEvent::Msg {
                    req: r,
                    msg: AppMsg::LoadReply { load },
                    ..
                } if r == req => {
                    self.sub
                        .trace
                        .message(tick, "load_query", MessageStatus::Delivered, 0);
                    self.sub.hub.message(metric_names::MSG_DELIVERED, 0);
                    let worker = self.worker;
                    self.sub.emit_event(SimEvent::LoadQueried {
                        tick,
                        worker,
                        neighbor,
                        load,
                    });
                    return Ok(load);
                }
                AppEvent::Msg {
                    req: r,
                    msg: AppMsg::Nack,
                    ..
                } if r == req => {
                    self.sub
                        .trace
                        .message(tick, "load_query", MessageStatus::Unreachable, 0);
                    self.sub.hub.message(metric_names::MSG_UNREACHABLE, 0);
                    return Err(ActionError::Unreachable);
                }
                AppEvent::Msg {
                    at,
                    from,
                    req: r,
                    msg,
                } => self.sub.serve_if_request(at, from, r, msg),
                AppEvent::LookupDone(_) => {}
            }
        }
    }

    /// The relayed cross-checking probe: an [`AppMsg::LoadQueryAbout`]
    /// round trip to `relay`, asking about `target`. Same blocking
    /// drain as the direct probe, but no `LoadQueried` decision — the
    /// round-level `note_probe` records the cross-checked outcome.
    fn query_load_via(&mut self, relay: Id, target: Id) -> Result<u64, ActionError> {
        let tick = self.sub.tick;
        let primary = self.primary();
        let req = self
            .sub
            .wire
            .send_app(primary, relay, AppMsg::LoadQueryAbout { target });
        let deadline = token(TAG_PROBE, req);
        let at = self.sub.wire.now() + self.sub.probe_timeout;
        self.sub.wire.schedule_app_timer(at, deadline);
        loop {
            let Some(ev) = self.sub.wire.run_until_app(u64::MAX) else {
                self.sub
                    .trace
                    .message(tick, "load_query", MessageStatus::TimedOut, 0);
                self.sub.hub.message(metric_names::MSG_TIMED_OUT, 0);
                return Err(ActionError::TimedOut);
            };
            match ev {
                AppEvent::Timer { token: t } if t == deadline => {
                    self.sub
                        .trace
                        .message(tick, "load_query", MessageStatus::TimedOut, 0);
                    self.sub.hub.message(metric_names::MSG_TIMED_OUT, 0);
                    return Err(ActionError::TimedOut);
                }
                AppEvent::Timer { token: t } => self.sub.defer_timer(t),
                AppEvent::Msg {
                    req: r,
                    msg: AppMsg::LoadReply { load },
                    ..
                } if r == req => {
                    self.sub
                        .trace
                        .message(tick, "load_query", MessageStatus::Delivered, 0);
                    self.sub.hub.message(metric_names::MSG_DELIVERED, 0);
                    return Ok(load);
                }
                AppEvent::Msg {
                    req: r,
                    msg: AppMsg::Nack,
                    ..
                } if r == req => {
                    self.sub
                        .trace
                        .message(tick, "load_query", MessageStatus::Unreachable, 0);
                    self.sub.hub.message(metric_names::MSG_UNREACHABLE, 0);
                    return Err(ActionError::Unreachable);
                }
                AppEvent::Msg {
                    at,
                    from,
                    req: r,
                    msg,
                } => self.sub.serve_if_request(at, from, r, msg),
                AppEvent::LookupDone(_) => {}
            }
        }
    }

    fn note_probe(&mut self, target: Id, agreed: bool, estimate: u64) {
        let tick = self.sub.tick;
        let worker = self.worker;
        self.sub.emit_event(if agreed {
            SimEvent::ProbeAgreed {
                tick,
                worker,
                target,
                estimate,
            }
        } else {
            SimEvent::ProbeConflict {
                tick,
                worker,
                target,
                estimate,
            }
        });
    }

    fn note_quarantine(&mut self, reporter: Id, suspicion: u64) {
        let tick = self.sub.tick;
        let worker = self.worker;
        if let Some(mark) = self
            .sub
            .owner_of
            .get(&reporter)
            .copied()
            .and_then(|owner| self.sub.quarantined_marks.get_mut(owner))
        {
            *mark += 1;
        }
        self.sub.emit_event(SimEvent::Quarantined {
            tick,
            worker,
            reporter,
            suspicion,
        });
    }

    fn random_id(&mut self) -> Id {
        Id::random(&mut self.sub.rng_strategy)
    }

    fn spawn_sybil(&mut self, pos: Id) -> Result<u64, ActionError> {
        self.sub.spawn_sybil_as(self.worker, pos)
    }

    fn retire_sybils(&mut self) {
        self.sub.retire_sybils_of(self.worker);
    }

    fn note_gap_split(&mut self, pos: Id) {
        let tick = self.sub.tick;
        let worker = self.worker;
        self.sub
            .emit_event(SimEvent::NeighborGapSplit { tick, worker, pos });
    }

    fn split_target(&mut self, victim: Id) -> Option<Id> {
        let node = self.sub.net.node(victim)?;
        let pred = node.predecessor();
        if pred == victim {
            return None;
        }
        Some(ring::midpoint(pred, victim))
    }

    /// The announcement goes to each listed predecessor as a separate
    /// wire message (the synchronous substrate models the whole round
    /// as one flat-rate message; event time bills what the wire
    /// actually carries). Volunteers answer with `InviteReply`; the
    /// round closes when every announcement settles or the probe
    /// deadline passes, and a helper is picked from the replies in
    /// arrival order — at zero latency, exactly the synchronous
    /// candidate order.
    fn invite(&mut self, hot: Id) -> InviteOutcome {
        let inviter = self.worker;
        let k = self.sub.params.num_neighbors;
        let preds: Vec<Id> = match self.sub.net.node(hot) {
            Some(n) => n
                .predecessors
                .iter()
                .copied()
                .filter(|&p| p != hot)
                .take(k)
                .collect(),
            None => return InviteOutcome::NoNeighbors,
        };
        if preds.is_empty() {
            return InviteOutcome::NoNeighbors;
        }
        let tick = self.sub.tick;
        let mut outstanding: BTreeSet<u64> = BTreeSet::new();
        for &p in &preds {
            let req = self.sub.wire.send_app(
                hot,
                p,
                AppMsg::Invitation {
                    inviter: inviter as u64,
                },
            );
            outstanding.insert(req);
        }
        let Some(wait_tok) = outstanding.iter().next().copied() else {
            return InviteOutcome::NoNeighbors;
        };
        let at = self.sub.wire.now() + self.sub.probe_timeout;
        self.sub
            .wire
            .schedule_app_timer(at, token(TAG_PROBE, wait_tok));
        let mut candidates: Vec<HelperCandidate> = Vec::new();
        let mut delivered = false;
        while !outstanding.is_empty() {
            let Some(ev) = self.sub.wire.run_until_app(u64::MAX) else {
                break;
            };
            match ev {
                AppEvent::Timer { token: t } if t == token(TAG_PROBE, wait_tok) => break,
                AppEvent::Timer { token: t } => self.sub.defer_timer(t),
                AppEvent::Msg {
                    at,
                    from,
                    req: r,
                    msg,
                } => match msg {
                    // Inbound requests (including our own announcements
                    // being *delivered* to their targets, which carry
                    // the same request ids) are served inline.
                    AppMsg::LoadQuery | AppMsg::Invitation { .. } => {
                        self.sub.serve_if_request(at, from, r, msg)
                    }
                    AppMsg::InviteReply { can, load } if outstanding.remove(&r) => {
                        delivered = true;
                        if can {
                            if let Some(&o) = self.sub.owner_of.get(&from) {
                                candidates.push(HelperCandidate {
                                    worker: o,
                                    strength: 1, // homogeneous substrate
                                    load,
                                });
                            }
                        }
                    }
                    AppMsg::Nack if outstanding.remove(&r) => {
                        delivered = true;
                    }
                    _ => {}
                },
                AppEvent::LookupDone(_) => {}
            }
        }
        if !delivered {
            // Every announcement died on the wire: the overloaded node
            // simply re-announces on its next check, because it is
            // still overburdened then.
            self.sub
                .trace
                .message(tick, "invitation", MessageStatus::Dropped, 0);
            self.sub.hub.message(metric_names::MSG_DROPPED, 0);
            return InviteOutcome::Unreachable;
        }
        self.sub
            .trace
            .message(tick, "invitation", MessageStatus::Delivered, 0);
        self.sub.hub.message(metric_names::MSG_DELIVERED, 0);
        self.sub.emit_event(SimEvent::InvitationSent {
            tick,
            worker: inviter,
        });
        let helper = pick_helper(&candidates, self.sub.params.strength_aware_invitation);
        let outcome = helper
            .and_then(|h| self.split_target(hot).map(|pos| (h, pos)))
            .and_then(|(h, pos)| {
                self.sub
                    .spawn_sybil_as(h, pos)
                    .ok()
                    .map(|acquired| (h, acquired))
            });
        match outcome {
            Some((helper, acquired)) => {
                self.sub.emit_event(SimEvent::InvitationHonored {
                    tick,
                    worker: inviter,
                    helper,
                    acquired,
                });
                InviteOutcome::Helped { acquired }
            }
            None => {
                self.sub.emit_event(SimEvent::InvitationRefused {
                    tick,
                    worker: inviter,
                });
                InviteOutcome::Refused
            }
        }
    }
}

/// Runs the computation on the event-time substrate.
///
/// # Panics
/// Panics if `cfg.proto.strategy` is [`StrategyKind::CentralizedOracle`].
pub fn run_event_sim(cfg: &EventSimConfig, seed: u64) -> EventRun {
    let mut placement: DetRng = substream(seed, 0, domains::PLACEMENT);
    let mut task_rng: DetRng = substream(seed, 0, domains::TASKS);
    let net = Network::bootstrap(cfg.proto.net, cfg.proto.nodes, &mut placement);
    let node_ids = net.node_ids();
    let task_keys: Vec<Id> = (0..cfg.proto.tasks)
        .map(|_| Id::random(&mut task_rng))
        .collect();
    run_event_inner(cfg, seed, net, node_ids, task_keys)
}

/// [`run_event_sim`] with explicit node placement and task keys — the
/// hook the tick-vs-event differential tests use to hand both
/// substrates bit-identical starting conditions.
pub fn run_event_sim_with_placement(
    cfg: &EventSimConfig,
    seed: u64,
    node_ids: Vec<Id>,
    task_keys: Vec<Id>,
) -> EventRun {
    // autobal-lint: allow(panic-safety, "caller contract: placement ids are distinct, mirroring run_protocol_sim_with_placement")
    let net = Network::from_ids(cfg.proto.net, &node_ids).expect("distinct node ids");
    run_event_inner(cfg, seed, net, node_ids, task_keys)
}

fn run_event_inner(
    cfg: &EventSimConfig,
    seed: u64,
    mut net: Network,
    node_ids: Vec<Id>,
    task_keys: Vec<Id>,
) -> EventRun {
    assert!(
        cfg.proto.strategy != StrategyKind::CentralizedOracle,
        "the centralized oracle needs the omniscient oracle-ring substrate"
    );
    for key in task_keys {
        net.insert_key(key);
    }
    net.maintenance_cycle();
    // The synchronous network is the good-weather state machine here;
    // adversity lives on the wire (and the substrate crash plane), so
    // `net`'s own fault plan stays inert.
    let mut wire = EventNet::from_ids(cfg.event, &node_ids);
    let mut wire_plan = cfg.proto.fault.clone();
    // Crash events stay on the substrate-level schedule (same victim
    // stream as the protocol run); the wire handles loss, delay,
    // duplication, and partitions — in event-time units.
    wire_plan.crashes = Vec::new();
    wire.set_fault_plan(wire_plan);

    let ideal = (cfg.proto.tasks as f64 / cfg.proto.nodes as f64).ceil() as u64;
    let mut crash_schedule: Vec<(u64, u32)> = cfg
        .proto
        .fault
        .crashes
        .iter()
        .map(|c| (c.at, c.count))
        .collect();
    if crash_schedule.is_empty() && cfg.proto.crash_rate > 0.0 {
        let total = (cfg.proto.crash_rate * cfg.proto.nodes as f64).ceil() as u32;
        for i in 0..total as u64 {
            let at = ((i + 1) * ideal.max(1)) / (total as u64 + 1);
            crash_schedule.push((at.max(1), 1));
        }
    }
    crash_schedule.sort_unstable();

    let mut workers: Vec<EWorker> = node_ids
        .iter()
        .map(|&id| EWorker {
            primary: id,
            sybils: Vec::new(),
            active: true,
        })
        .collect();
    let owner_of: BTreeMap<Id, usize> = node_ids
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();
    let mut waiting = Vec::new();
    if cfg.proto.churn_rate > 0.0 {
        for _ in 0..cfg.proto.nodes {
            waiting.push(workers.len());
            workers.push(EWorker {
                primary: Id::ZERO,
                sybils: Vec::new(),
                active: false,
            });
        }
    }

    let mut stack = StrategyStack::new();
    if cfg.proto.churn_rate > 0.0 {
        stack.push(Box::new(BackgroundChurn {
            leave_p: cfg.proto.churn_rate,
            join_p: cfg.proto.churn_rate,
        }));
    }
    if let Some(s) = strategy_for(cfg.proto.strategy) {
        // Cross-checking is a transparent decorator: with the default
        // (disabled) config this returns `s` untouched.
        stack.push(wrap_if_enabled(s, &cfg.proto.cross_check));
    }

    let degenerate = cfg.event.latency == 0 && !cfg.proto.fault.is_active();
    let tick_len = cfg.tick_len.max(1);
    let slots = workers.len();
    let mut sub = EventSubstrate {
        net,
        wire,
        active_count: cfg.proto.nodes,
        workers,
        waiting,
        owner_of,
        params: StrategyParams {
            sybil_threshold: cfg.proto.sybil_threshold,
            overload_threshold: (cfg.proto.overload_factor * cfg.proto.tasks as f64
                / cfg.proto.nodes.max(1) as f64)
                .ceil() as u64,
            num_neighbors: cfg.proto.net.successor_list_len,
            chosen_ids: false,
            strength_aware_invitation: false,
        },
        max_sybils: cfg.proto.max_sybils,
        tick: 0,
        probe_timeout: cfg.probe_timeout.max(1),
        degenerate,
        deferred: VecDeque::new(),
        crash_schedule: crash_schedule.into_iter().collect(),
        rng_strategy: substream(seed, 0, domains::STRATEGY),
        rng_churn: substream(seed, 0, domains::CHURN),
        rng_faults: substream(seed, 0, domains::FAULTS),
        sybils_created: 0,
        sybils_retired: 0,
        tasks_lost: 0,
        workers_crashed: 0,
        crash_retirement: cfg.proto.crash_retirement,
        adversary: AdversaryState::new(cfg.proto.adversary.clone(), cfg.proto.nodes),
        tasks_done: vec![0; slots],
        lookup_latencies: Vec::new(),
        lookup_timeouts: 0,
        events: EventLog::new(cfg.proto.record_events),
        trace: {
            let mut trace = Trace::new(cfg.proto.record_trace);
            trace.run_start(0, "event", cfg.proto.strategy.label(), seed);
            trace
        },
        hub: MetricsHub::new(cfg.proto.record_metrics).with_ring(cfg.proto.metrics_ring),
        metrics_every: cfg
            .proto
            .record_metrics
            .then(|| cfg.proto.metrics_interval.unwrap_or(1).max(1)),
        quarantined_marks: vec![0; slots],
    };
    if sub.metrics_every.is_some() {
        sub.sample_metrics();
    }

    // First tick boundary after one tick's worth of event time; the
    // staggered stabilize timers armed by `from_ids` already populate
    // the queue, so the wire is never idle.
    sub.wire.schedule_app_timer(tick_len, token(TAG_TICK, 0));

    let mut done = false;
    while !done {
        // Deferred timers — check sweeps and tick boundaries that fired
        // while an action was blocked — replay first, in the order the
        // queue originally surfaced them.
        let ev = match sub.deferred.pop_front() {
            Some(tok) => AppEvent::Timer { token: tok },
            None => match sub.wire.run_until_app(u64::MAX) {
                Some(ev) => ev,
                None => break,
            },
        };
        match ev {
            AppEvent::Timer { token: tok } => match tok >> TAG_SHIFT {
                TAG_TICK => {
                    if sub.net.total_keys() == 0 || sub.tick >= cfg.proto.max_ticks {
                        done = true;
                        continue;
                    }
                    sub.tick += 1;
                    let tick = sub.tick;
                    sub.net.set_clock(tick);
                    sub.hub.inc(metric_names::TICKS);
                    // Substrate crash plane lands before anything else.
                    while sub
                        .crash_schedule
                        .front()
                        .map(|&(at, _)| at <= tick)
                        .unwrap_or(false)
                    {
                        if let Some((_, count)) = sub.crash_schedule.pop_front() {
                            sub.apply_crashes(count);
                        }
                    }
                    stack.on_tick(&mut sub);
                    let checking =
                        tick.is_multiple_of(cfg.proto.check_interval) && stack.has_per_node();
                    if checking {
                        // Schedule one CHECK per active worker plus the
                        // closing POSTCHECK, all "now": same-timestamp
                        // FIFO ordering makes the sweep run in the
                        // synchronous decision order, but any event
                        // already on the wire interleaves with it.
                        let now = sub.wire.now();
                        for w in sub.decision_order() {
                            sub.wire.schedule_app_timer(now, token(TAG_CHECK, w as u64));
                        }
                        sub.wire.schedule_app_timer(now, token(TAG_POSTCHECK, 0));
                    } else {
                        sub.work_phase();
                        sub.net.maintenance_cycle();
                        sub.maybe_sample_metrics();
                    }
                    sub.drain_lookups();
                    let next = sub.wire.now() + tick_len;
                    sub.wire.schedule_app_timer(next, token(TAG_TICK, 0));
                }
                TAG_CHECK => {
                    let w = (tok & ((1 << TAG_SHIFT) - 1)) as usize;
                    let live = sub.workers.get(w).map(|p| p.active).unwrap_or(false);
                    if live {
                        stack.check_one(&mut sub, w);
                    }
                }
                TAG_POSTCHECK => {
                    sub.work_phase();
                    sub.net.maintenance_cycle();
                    sub.maybe_sample_metrics();
                }
                // Stale probe deadline: its probe already resolved.
                _ => {}
            },
            AppEvent::Msg { at, from, req, msg } => sub.serve_if_request(at, from, req, msg),
            AppEvent::LookupDone(_) => {}
        }
    }
    sub.drain_lookups();

    let completed = sub.net.total_keys() == 0;
    sub.trace.run_end(sub.tick, completed);

    EventRun {
        ticks: sub.tick,
        ideal_ticks: ideal.max(1),
        runtime_factor: sub.tick as f64 / ideal.max(1) as f64,
        completed,
        time: sub.wire.now(),
        messages: sub.net.stats.clone(),
        wire: sub.wire.stats.clone(),
        wire_events: sub.wire.wire_events,
        sybils_created: sub.sybils_created,
        sybils_retired: sub.sybils_retired,
        tasks_lost: sub.tasks_lost,
        workers_crashed: sub.workers_crashed,
        tasks_remaining: sub.net.total_keys() as u64,
        tasks_done: sub.tasks_done,
        lookup_latencies: sub.lookup_latencies,
        lookup_timeouts: sub.lookup_timeouts,
        events: sub.events,
        trace: sub.trace,
        metrics: sub.hub.into_samples(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol_sim::run_protocol_sim;
    use autobal_chord::FaultPlan;

    fn small(strategy: StrategyKind) -> EventSimConfig {
        EventSimConfig {
            proto: ProtocolSimConfig {
                nodes: 32,
                tasks: 1_600,
                strategy,
                ..ProtocolSimConfig::default()
            },
            ..EventSimConfig::default()
        }
    }

    fn degenerate(strategy: StrategyKind) -> EventSimConfig {
        EventSimConfig {
            event: EventConfig {
                latency: 0,
                ..EventConfig::default()
            },
            ..small(strategy)
        }
    }

    #[test]
    fn event_baseline_completes_under_real_latency() {
        let res = run_event_sim(&small(StrategyKind::None), 1);
        assert!(res.completed);
        assert_eq!(res.tasks_remaining, 0);
        assert!(res.time >= res.ticks * 100, "event time covers every tick");
        assert!(res.wire.stabilize > 0, "stabilization actually ran");
        assert!(res.wire_events > 0);
        assert_eq!(res.tasks_done.iter().sum::<u64>(), 1_600);
    }

    #[test]
    fn degenerate_config_reproduces_protocol_decisions() {
        // The tentpole pin: zero latency + inert faults must replay the
        // synchronous substrate's decision stream bit-for-bit, for
        // every decentralized strategy.
        for kind in [
            StrategyKind::None,
            StrategyKind::RandomInjection,
            StrategyKind::NeighborInjection,
            StrategyKind::SmartNeighbor,
            StrategyKind::Invitation,
        ] {
            let cfg = degenerate(kind);
            let mut pcfg = cfg.proto.clone();
            pcfg.record_events = true;
            let ecfg = EventSimConfig {
                proto: pcfg.clone(),
                ..cfg
            };
            let proto = run_protocol_sim(&pcfg, 2);
            let event = run_event_sim(&ecfg, 2);
            assert_eq!(proto.ticks, event.ticks, "{kind:?}: tick counts differ");
            assert_eq!(
                proto.events.events(),
                event.events.events(),
                "{kind:?}: decision streams differ"
            );
            assert_eq!(proto.sybils_created, event.sybils_created, "{kind:?}");
            assert_eq!(proto.sybils_retired, event.sybils_retired, "{kind:?}");
        }
    }

    #[test]
    fn degenerate_parity_survives_churn_and_crashes() {
        for (churn, crash) in [(0.005, 0.0), (0.0, 0.05), (0.005, 0.05)] {
            let mut cfg = degenerate(StrategyKind::RandomInjection);
            cfg.proto.churn_rate = churn;
            cfg.proto.crash_rate = crash;
            cfg.proto.record_events = true;
            let proto = run_protocol_sim(&cfg.proto, 3);
            let event = run_event_sim(&cfg, 3);
            assert_eq!(
                proto.events.events(),
                event.events.events(),
                "churn={churn} crash={crash}: decision streams differ"
            );
            assert_eq!(proto.ticks, event.ticks);
            assert_eq!(proto.workers_crashed, event.workers_crashed);
        }
    }

    #[test]
    fn strategy_traffic_is_billed_to_the_wire() {
        let smart = run_event_sim(&small(StrategyKind::SmartNeighbor), 4);
        assert!(smart.completed);
        assert!(smart.sybils_created > 0);
        assert!(smart.wire.load_query > 0, "probes must ride the real queue");
        assert_eq!(
            smart.wire.strategy_overhead(),
            smart.wire.load_query + smart.wire.invitation
        );
        // The synchronous plane never bills strategy messages here.
        assert_eq!(smart.messages.load_query, 0);
        assert_eq!(smart.messages.invitation, 0);
    }

    #[test]
    fn invitation_round_trips_on_the_wire() {
        let inv = run_event_sim(
            &EventSimConfig {
                proto: ProtocolSimConfig {
                    overload_factor: 1.0,
                    record_events: true,
                    ..small(StrategyKind::Invitation).proto
                },
                ..small(StrategyKind::Invitation)
            },
            5,
        );
        assert!(inv.completed);
        assert!(inv.wire.invitation > 0, "announcements were sent");
        assert!(inv.sybils_created > 0, "helpers actually joined");
        let sent = inv
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::InvitationSent { .. }))
            .count() as u64;
        let honored = inv
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::InvitationHonored { .. }))
            .count() as u64;
        let refused = inv
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::InvitationRefused { .. }))
            .count() as u64;
        assert!(honored > 0);
        assert_eq!(sent, honored + refused);
    }

    #[test]
    fn latency_stretches_ticks_for_probing_strategies() {
        // Smart neighbor pays per-probe round trips: at high latency
        // the same tick count must span strictly more event time than
        // the baseline's maintenance-only wire.
        let slow = EventSimConfig {
            event: EventConfig {
                latency: 50,
                ..EventConfig::default()
            },
            ..small(StrategyKind::SmartNeighbor)
        };
        let res = run_event_sim(&slow, 6);
        assert!(res.completed);
        assert!(
            res.time > res.ticks * res.tasks_done.len() as u64 / 8,
            "checks must consume event time"
        );
        assert!(res.wire.load_query > 0);
    }

    #[test]
    fn lossy_wire_degrades_gracefully() {
        for kind in [StrategyKind::RandomInjection, StrategyKind::SmartNeighbor] {
            let clean = run_event_sim(&small(kind), 7);
            let lossy = run_event_sim(
                &EventSimConfig {
                    proto: ProtocolSimConfig {
                        fault: FaultPlan::lossy(7, 0.10),
                        ..small(kind).proto
                    },
                    ..small(kind)
                },
                7,
            );
            assert!(lossy.completed, "{kind:?} must finish at 10% wire loss");
            assert!(lossy.wire.dropped > 0, "{kind:?}: the wire actually lost");
            assert!(
                lossy.runtime_factor <= clean.runtime_factor * 2.5,
                "{kind:?}: lossy {} vs clean {}",
                lossy.runtime_factor,
                clean.runtime_factor
            );
        }
    }

    #[test]
    fn churn_composes_on_event_time() {
        let res = run_event_sim(
            &EventSimConfig {
                proto: ProtocolSimConfig {
                    churn_rate: 0.005,
                    record_events: true,
                    ..small(StrategyKind::RandomInjection).proto
                },
                ..small(StrategyKind::RandomInjection)
            },
            8,
        );
        assert!(res.completed);
        let left = res
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::WorkerLeft { .. }))
            .count();
        let joined = res
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::WorkerJoined { .. }))
            .count();
        assert!(left > 0, "churn departures happened");
        assert!(joined > 0, "churn rejoins happened (wire joins resolved)");
        assert!(res.sybils_created > 0);
    }

    #[test]
    fn oracle_strategy_is_rejected() {
        let r =
            std::panic::catch_unwind(|| run_event_sim(&small(StrategyKind::CentralizedOracle), 1));
        assert!(r.is_err());
    }

    #[test]
    fn event_runs_are_deterministic() {
        let cfg = EventSimConfig {
            proto: ProtocolSimConfig {
                record_trace: true,
                fault: FaultPlan::lossy(9, 0.05),
                ..small(StrategyKind::SmartNeighbor).proto
            },
            ..small(StrategyKind::SmartNeighbor)
        };
        let a = run_event_sim(&cfg, 9);
        let b = run_event_sim(&cfg, 9);
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.time, b.time);
        assert_eq!(a.wire, b.wire);
        assert_eq!(a.tasks_done, b.tasks_done);
        assert_eq!(
            autobal_telemetry::to_jsonl(a.trace.records()),
            autobal_telemetry::to_jsonl(b.trace.records())
        );
    }

    #[test]
    fn crash_failures_conserve_replicated_keys_on_event_time() {
        let res = run_event_sim(
            &EventSimConfig {
                proto: ProtocolSimConfig {
                    crash_rate: 0.05,
                    ..small(StrategyKind::RandomInjection).proto
                },
                ..small(StrategyKind::RandomInjection)
            },
            10,
        );
        assert!(res.completed, "run must finish despite crashes");
        assert!(res.workers_crashed > 0);
        assert_eq!(res.tasks_lost, 0, "replication covers every victim");
        assert_eq!(res.messages.keys_lost, 0);
    }

    #[test]
    fn lookup_latency_tail_is_recorded() {
        let res = run_event_sim(&small(StrategyKind::RandomInjection), 11);
        assert!(
            !res.lookup_latencies.is_empty(),
            "finger refreshes and joins complete on the wire"
        );
        assert!(res.lookup_latencies.iter().all(|&l| l > 0));
    }

    #[test]
    fn byzantine_lies_are_billed_to_the_wire() {
        use autobal_chord::{AdversaryPlan, LiePolicy};
        // Lies are applied when the reply is served, ride the real
        // LoadReply back, and are mirrored one-for-one by LoadLied
        // events on a lossless wire.
        let res = run_event_sim(
            &EventSimConfig {
                proto: ProtocolSimConfig {
                    record_events: true,
                    adversary: AdversaryPlan::lying(7, 0.25, LiePolicy::OverReport),
                    ..small(StrategyKind::SmartNeighbor).proto
                },
                ..small(StrategyKind::SmartNeighbor)
            },
            12,
        );
        assert!(res.completed);
        assert!(res.wire.lied > 0, "some probe was answered by a liar");
        let lied_events = res
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::LoadLied { .. }))
            .count() as u64;
        assert_eq!(lied_events, res.wire.lied);
        // Lies distort replies that were sent anyway: the meta-counter
        // stays out of the wire total.
        assert!(res.wire.total() >= res.wire.load_query);
    }

    #[test]
    fn degenerate_parity_holds_under_active_adversary_and_cross_check() {
        use autobal_chord::{AdversaryPlan, LiePolicy};
        use autobal_core::strategy::crosscheck::CrossCheckConfig;
        // The tentpole pin, hostile edition: with 25% liars AND the
        // cross-checking defense on, zero latency must still replay the
        // synchronous substrate bit-for-bit — lies are a pure function
        // of (worker, true load, tick) and relays are picked
        // deterministically, so nothing depends on wall-clock order.
        for kind in [StrategyKind::SmartNeighbor, StrategyKind::Invitation] {
            let mut cfg = degenerate(kind);
            cfg.proto.record_events = true;
            cfg.proto.adversary = AdversaryPlan::lying(7, 0.25, LiePolicy::OverReport);
            cfg.proto.cross_check = CrossCheckConfig::with_budget(2);
            let proto = run_protocol_sim(&cfg.proto, 13);
            let event = run_event_sim(&cfg, 13);
            assert_eq!(proto.ticks, event.ticks, "{kind:?}: tick counts differ");
            assert_eq!(
                proto.events.events(),
                event.events.events(),
                "{kind:?}: decision streams differ under adversary"
            );
            // Satellite pin: probes and lied replies bill the tick shim
            // and the event wire identically.
            assert_eq!(
                proto.messages.load_query, event.wire.load_query,
                "{kind:?}: probe bills diverge"
            );
            assert_eq!(
                proto.messages.lied, event.wire.lied,
                "{kind:?}: lie meta-counters diverge"
            );
            if kind == StrategyKind::SmartNeighbor {
                // Invitation steers by announcements, not load probes,
                // so only the probing strategy actually meets the liars.
                assert!(proto.messages.lied > 0, "the adversary was live");
            }
        }
    }
}
