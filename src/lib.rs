//! # autobal — autonomous DHT load balancing via churn and the Sybil attack
//!
//! Umbrella crate re-exporting the workspace's public API. See the README
//! for a tour and `DESIGN.md` for the system inventory.

pub mod event_sim;
pub mod protocol_sim;
pub mod reference;

pub use autobal_chord as chord;
pub use autobal_core as sim;
pub use autobal_id as id;
pub use autobal_stats as stats;
pub use autobal_viz as viz;
pub use autobal_workload as workload;

pub use autobal_id::Id;

#[cfg(feature = "count-allocs")]
pub use autobal_meminstr as meminstr;
