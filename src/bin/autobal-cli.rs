//! `autobal-cli` — run load-balancing simulations from the command line.
//!
//! ```text
//! autobal-cli run --nodes 1000 --tasks 100000 --strategy random \
//!                 [--churn 0.01] [--trials 10] [--seed 42] [--json]
//! autobal-cli spec experiment.json [--json]
//! autobal-cli strategies
//! ```

use autobal::sim::{SimConfig, StrategyKind};
use autobal::workload::trials::{run_and_summarize, TrialStats};
use autobal::workload::ExperimentSpec;

// `autobal-cli` is one of the workspace's two audited output endpoints
// (`autobal-trace` is the other): every byte it prints flows through
// these two helpers, each carrying an output-discipline exemption.
fn outln(line: &str) {
    // autobal-lint: allow(output-discipline, "autobal-cli is an audited CLI output endpoint")
    println!("{line}");
}

fn errln(line: &str) {
    // autobal-lint: allow(output-discipline, "autobal-cli is an audited CLI output endpoint")
    eprintln!("{line}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("spec") => cmd_spec(&args[1..]),
        Some("strategies") => {
            for s in StrategyKind::ALL {
                outln(s.label());
            }
            outln("oracle   (centralized comparator, not in the paper)");
            0
        }
        _ => {
            errln(
                "usage: autobal-cli run --nodes N --tasks T --strategy S \
                 [--churn R] [--trials K] [--seed X] [--json]\n       \
                 autobal-cli spec <file.json> [--json]\n       \
                 autobal-cli strategies",
            );
            2
        }
    };
    std::process::exit(code);
}

fn parse_strategy(s: &str) -> Option<StrategyKind> {
    match s {
        "none" => Some(StrategyKind::None),
        "churn" => Some(StrategyKind::Churn),
        "random" => Some(StrategyKind::RandomInjection),
        "neighbor" => Some(StrategyKind::NeighborInjection),
        "smart" => Some(StrategyKind::SmartNeighbor),
        "invitation" => Some(StrategyKind::Invitation),
        "oracle" => Some(StrategyKind::CentralizedOracle),
        _ => None,
    }
}

fn cmd_run(args: &[String]) -> i32 {
    let mut cfg = SimConfig::default();
    let mut trials = 10u64;
    let mut seed = 42u64;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{flag} needs a value"))
        };
        let res: Result<(), String> = (|| {
            match a.as_str() {
                "--nodes" => cfg.nodes = next("--nodes")?.parse().map_err(|e| format!("{e}"))?,
                "--tasks" => cfg.tasks = next("--tasks")?.parse().map_err(|e| format!("{e}"))?,
                "--strategy" => {
                    let s = next("--strategy")?;
                    cfg.strategy = parse_strategy(&s).ok_or(format!("unknown strategy {s}"))?;
                }
                "--churn" => {
                    cfg.churn_rate = next("--churn")?.parse().map_err(|e| format!("{e}"))?
                }
                "--threshold" => {
                    cfg.sybil_threshold =
                        next("--threshold")?.parse().map_err(|e| format!("{e}"))?
                }
                "--trials" => trials = next("--trials")?.parse().map_err(|e| format!("{e}"))?,
                "--seed" => seed = next("--seed")?.parse().map_err(|e| format!("{e}"))?,
                "--json" => json = true,
                other => return Err(format!("unknown flag {other}")),
            }
            Ok(())
        })();
        if let Err(e) = res {
            errln(&format!("error: {e}"));
            return 2;
        }
    }
    if let Err(e) = cfg.validate() {
        errln(&format!("invalid config: {e}"));
        return 2;
    }
    let stats = run_and_summarize(&cfg, trials, seed);
    report(&cfg, &stats, json);
    0
}

fn cmd_spec(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        errln("spec: missing file argument");
        return 2;
    };
    let json = args.iter().any(|a| a == "--json");
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            errln(&format!("cannot read {path}: {e}"));
            return 1;
        }
    };
    let spec = match ExperimentSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            errln(&format!("bad spec: {e}"));
            return 1;
        }
    };
    if let Err(e) = spec.config.validate() {
        errln(&format!("invalid config in spec: {e}"));
        return 2;
    }
    let stats = run_and_summarize(&spec.config, spec.trials, spec.seed);
    outln(&format!("experiment: {}", spec.name));
    report(&spec.config, &stats, json);
    0
}

fn report(cfg: &SimConfig, stats: &TrialStats, json: bool) {
    if json {
        // Hand-rolled JSON keeps TrialStats free of serde bounds.
        outln(&format!(
            "{{\"strategy\":\"{}\",\"nodes\":{},\"tasks\":{},\"trials\":{},\
             \"mean_runtime_factor\":{:.6},\"std_runtime_factor\":{:.6},\
             \"min\":{:.6},\"max\":{:.6},\"mean_ticks\":{:.2},\
             \"ideal_ticks\":{},\"incomplete\":{}}}",
            cfg.strategy.label(),
            cfg.nodes,
            cfg.tasks,
            stats.trials,
            stats.mean_runtime_factor,
            stats.std_runtime_factor,
            stats.min_runtime_factor,
            stats.max_runtime_factor,
            stats.mean_ticks,
            stats.ideal_ticks,
            stats.incomplete
        ));
    } else {
        outln(&format!(
            "{} | {} nodes, {} tasks | ideal {} ticks",
            cfg.strategy.label(),
            cfg.nodes,
            cfg.tasks,
            stats.ideal_ticks
        ));
        outln(&format!(
            "runtime factor {:.3} ± {:.3} (min {:.3}, max {:.3}) over {} trials",
            stats.mean_runtime_factor,
            stats.std_runtime_factor,
            stats.min_runtime_factor,
            stats.max_runtime_factor,
            stats.trials
        ));
        if stats.incomplete > 0 {
            outln(&format!(
                "WARNING: {} trials hit the tick cap",
                stats.incomplete
            ));
        }
    }
}
