//! End-to-end validation: the paper's random-injection strategy running
//! on the **real Chord protocol substrate** instead of the oracle ring.
//!
//! The tick simulator (`autobal-core`) models ring state directly — the
//! same abstraction the paper's own simulator uses. This module closes
//! the loop: workers here are actual [`autobal_chord::Network`] nodes;
//! a Sybil is a *real protocol join* (routing hops, key-range handoff,
//! notify); Sybil retirement is a real graceful leave; ring repair runs
//! the real stabilization machinery every tick; and every message is
//! counted. If the paper's effect survives on this substrate, the
//! oracle-ring shortcut is justified.

use autobal_chord::{NetConfig, Network};
use autobal_id::Id;
use autobal_stats::rng::{domains, substream, DetRng};


/// Configuration for a protocol-level run.
#[derive(Debug, Clone)]
pub struct ProtocolSimConfig {
    /// Physical workers (each one Chord node at start).
    pub nodes: usize,
    /// Tasks (keys) to place and consume.
    pub tasks: u64,
    /// Run random injection (`true`) or no strategy (`false`).
    pub random_injection: bool,
    /// Check cadence in ticks (paper: 5).
    pub check_interval: u64,
    /// Maximum Sybils per worker (paper: 5).
    pub max_sybils: u32,
    /// Chord substrate knobs.
    pub net: NetConfig,
    /// Safety cap.
    pub max_ticks: u64,
}

impl Default for ProtocolSimConfig {
    fn default() -> Self {
        ProtocolSimConfig {
            nodes: 64,
            tasks: 6_400,
            random_injection: true,
            check_interval: 5,
            max_sybils: 5,
            net: NetConfig {
                // Fewer fingers per cycle keep the per-tick protocol cost
                // proportionate at this scale.
                fingers_per_cycle: 4,
                ..NetConfig::default()
            },
            max_ticks: 100_000,
        }
    }
}

/// Result of a protocol-level run.
#[derive(Debug, Clone)]
pub struct ProtocolRun {
    pub ticks: u64,
    pub ideal_ticks: u64,
    pub runtime_factor: f64,
    pub completed: bool,
    /// Protocol messages spent over the whole run (maintenance included).
    pub messages: autobal_chord::MessageStats,
    /// Sybil joins performed.
    pub sybils_created: u64,
}

/// One physical worker: its primary Chord node plus live Sybil nodes.
struct PWorker {
    primary: Id,
    sybils: Vec<Id>,
}

/// Runs the computation on the protocol substrate and reports the
/// runtime factor, exactly like [`autobal_core::Sim`] but with every
/// DHT operation performed by the real implementation.
pub fn run_protocol_sim(cfg: &ProtocolSimConfig, seed: u64) -> ProtocolRun {
    let mut placement: DetRng = substream(seed, 0, domains::PLACEMENT);
    let mut task_rng: DetRng = substream(seed, 0, domains::TASKS);
    let mut strategy_rng: DetRng = substream(seed, 0, domains::STRATEGY);

    let mut net = Network::bootstrap(cfg.net, cfg.nodes, &mut placement);
    let mut workers: Vec<PWorker> = net
        .node_ids()
        .into_iter()
        .map(|id| PWorker {
            primary: id,
            sybils: Vec::new(),
        })
        .collect();
    for _ in 0..cfg.tasks {
        net.insert_key(Id::random(&mut task_rng));
    }
    net.maintenance_cycle();

    let ideal = (cfg.tasks as f64 / cfg.nodes as f64).ceil() as u64;
    let mut tick = 0u64;
    let mut sybils_created = 0u64;

    while net.total_keys() > 0 && tick < cfg.max_ticks {
        tick += 1;

        // Strategy check every interval.
        if cfg.random_injection && tick % cfg.check_interval == 0 {
            for w in workers.iter_mut() {
                let load: usize = std::iter::once(w.primary)
                    .chain(w.sybils.iter().copied())
                    .filter_map(|v| net.node(v))
                    .map(|n| n.keys.len())
                    .sum();
                if load > 0 {
                    continue;
                }
                // Idle: stale Sybils leave the ring (graceful protocol
                // departures), then one fresh Sybil joins at random.
                for s in std::mem::take(&mut w.sybils) {
                    let _ = net.leave(s);
                }
                if (w.sybils.len() as u32) < cfg.max_sybils {
                    let pos = Id::random(&mut strategy_rng);
                    if net.join(pos, w.primary).is_ok() {
                        w.sybils.push(pos);
                        sybils_created += 1;
                    }
                }
            }
        }

        // Work phase: each worker consumes one task from its nodes.
        for w in &workers {
            let vnodes = std::iter::once(w.primary).chain(w.sybils.iter().copied());
            for v in vnodes {
                let popped = net
                    .node_mut(v)
                    .and_then(|n| n.keys.pop_first())
                    .is_some();
                if popped {
                    break;
                }
            }
        }

        // One maintenance cycle per tick (§V: "a tick is enough time to
        // accomplish at least one maintenance cycle").
        net.maintenance_cycle();
    }

    ProtocolRun {
        ticks: tick,
        ideal_ticks: ideal.max(1),
        runtime_factor: tick as f64 / ideal.max(1) as f64,
        completed: net.total_keys() == 0,
        messages: net.stats.clone(),
        sybils_created,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(random_injection: bool) -> ProtocolSimConfig {
        ProtocolSimConfig {
            nodes: 32,
            tasks: 1_600,
            random_injection,
            ..ProtocolSimConfig::default()
        }
    }

    #[test]
    fn protocol_baseline_matches_harmonic_ballpark() {
        let res = run_protocol_sim(&small(false), 1);
        assert!(res.completed);
        // H_32 ≈ 4.06; generous envelope for a single trial.
        assert!(
            res.runtime_factor > 2.0 && res.runtime_factor < 7.5,
            "baseline factor {}",
            res.runtime_factor
        );
        assert_eq!(res.sybils_created, 0);
    }

    #[test]
    fn random_injection_wins_on_the_real_substrate_too() {
        let base = run_protocol_sim(&small(false), 2);
        let inj = run_protocol_sim(&small(true), 2);
        assert!(inj.completed);
        assert!(inj.sybils_created > 0);
        assert!(
            inj.runtime_factor < base.runtime_factor * 0.75,
            "protocol-level injection {} vs baseline {}",
            inj.runtime_factor,
            base.runtime_factor
        );
    }

    #[test]
    fn protocol_and_oracle_simulators_agree() {
        // The whole point: the oracle-ring simulator and the protocol
        // substrate must tell the same story on matched configurations.
        let proto = run_protocol_sim(&small(true), 3);
        let oracle = autobal_core::Sim::new(
            autobal_core::SimConfig {
                nodes: 32,
                tasks: 1_600,
                strategy: autobal_core::StrategyKind::RandomInjection,
                ..autobal_core::SimConfig::default()
            },
            3,
        )
        .run();
        let diff = (proto.runtime_factor - oracle.runtime_factor).abs();
        assert!(
            diff < 1.0,
            "protocol {} vs oracle {} should agree within a factor unit",
            proto.runtime_factor,
            oracle.runtime_factor
        );
    }

    #[test]
    fn protocol_run_spends_real_messages() {
        let res = run_protocol_sim(&small(true), 4);
        assert!(res.messages.stabilize > 0);
        assert!(res.messages.find_successor_hops > 0, "joins routed");
        assert!(res.messages.key_transfer > 0, "handoffs happened");
        assert!(res.messages.replica_push > 0, "active backup ran");
    }
}
