//! End-to-end validation: the paper's strategies running on the **real
//! Chord protocol substrate** instead of the oracle ring.
//!
//! The tick simulator (`autobal-core`) models ring state directly — the
//! same abstraction the paper's own simulator uses. This module closes
//! the loop: it implements the same [`Substrate`] / [`LocalView`] /
//! [`Actions`] surface over an [`autobal_chord::Network`], so the *same
//! trait-object strategies* — random injection, neighbor injection,
//! smart neighbor, invitation, and background churn — run here
//! unmodified. A Sybil is a *real protocol join* (routing hops,
//! key-range handoff, notify); retirement is a real graceful leave;
//! ring repair runs the real stabilization machinery every tick; a
//! strategy's `query_load` and `invite` calls are billed to the
//! network's [`MessageStats`] (see
//! [`MessageStats::strategy_overhead`]). The one deliberate exception
//! is the centralized oracle: a real network has no omniscient view, so
//! [`Substrate::check_omniscient`] reports unsupported here.
//!
//! If the paper's effect survives on this substrate, the oracle-ring
//! shortcut is justified.

use autobal_chord::{
    AdversaryPlan, AdversaryState, FaultPlan, MessageKind, MessageStats, NetConfig, Network,
    NetworkError,
};
use autobal_core::strategy::{
    churn::BackgroundChurn,
    crosscheck::{wrap_if_enabled, CrossCheckConfig},
    invitation::{pick_helper, HelperCandidate},
    strategy_for, ActionError, Actions, ChurnOps, InviteOutcome, LocalView, Strategy,
    StrategyParams, StrategyStack, Substrate,
};
use autobal_core::trace::{EventLog, SimEvent};
use autobal_core::StrategyKind;
use autobal_id::{ring, Id};
use autobal_metrics::{names as metric_names, MetricsHub, MetricsSample, MetricsSink, RingSlot};
use autobal_stats::rng::{domains, substream, DetRng};
use autobal_telemetry::{MessageStatus, Trace, TraceSink};
use rand::Rng;
use std::collections::BTreeMap;

/// Configuration for a protocol-level run.
#[derive(Debug, Clone)]
pub struct ProtocolSimConfig {
    /// Physical workers (each one Chord node at start).
    pub nodes: usize,
    /// Tasks (keys) to place and consume.
    pub tasks: u64,
    /// Which strategy to run. [`StrategyKind::CentralizedOracle`] is
    /// rejected: a real network cannot provide the omniscient view.
    pub strategy: StrategyKind,
    /// Per-tick Bernoulli churn probability; 0 disables churn. When
    /// set, a waiting pool of `nodes` extra workers is created, as in
    /// the oracle-ring simulator (§IV-A).
    pub churn_rate: f64,
    /// Check cadence in ticks (paper: 5).
    pub check_interval: u64,
    /// Maximum Sybils per worker (paper: 5).
    pub max_sybils: u32,
    /// A node at or below this load may volunteer a Sybil (paper: 0).
    pub sybil_threshold: u64,
    /// Invitation overload cutoff factor (threshold = factor × mean).
    pub overload_factor: f64,
    /// Chord substrate knobs.
    pub net: NetConfig,
    /// Safety cap.
    pub max_ticks: u64,
    /// Record a [`SimEvent`] trace of strategy decisions.
    pub record_events: bool,
    /// Record a span-structured flight-recorder trace (see
    /// `autobal-telemetry`). Stamped with ticks, never wall-clock.
    pub record_trace: bool,
    /// Fault plan armed on the network after the initial stabilization
    /// (the paper's "network starts stable" assumption is preserved;
    /// adversity begins at tick 1). Inert by default.
    pub fault: FaultPlan,
    /// Fraction of the initial population to crash-fail over the run
    /// (victims picked uniformly, spread across the nominal duration).
    /// Only consulted when `fault.crashes` is empty; crashed workers
    /// never return. 0 disables.
    pub crash_rate: f64,
    /// Retire Sybils abruptly (`Network::fail`) instead of gracefully
    /// (`Network::leave`): the Sybil process just exits, and its keys
    /// survive only through replication.
    pub crash_retirement: bool,
    /// Byzantine adversary plan: which fraction of the initial workers
    /// answer load probes dishonestly, and how. Inert by default.
    pub adversary: AdversaryPlan,
    /// Cross-checking probe defense wrapped around the Sybil strategy
    /// (see `autobal_core::strategy::crosscheck`). Disabled by default.
    pub cross_check: CrossCheckConfig,
    /// Record streaming metrics samples (see `autobal-metrics`).
    pub record_metrics: bool,
    /// Metrics sampling cadence in ticks; defaults to every tick.
    pub metrics_interval: Option<u64>,
    /// Include a per-worker ring snapshot in each metrics sample
    /// (monitor food; O(workers) per sample).
    pub metrics_ring: bool,
}

impl Default for ProtocolSimConfig {
    fn default() -> Self {
        ProtocolSimConfig {
            nodes: 64,
            tasks: 6_400,
            strategy: StrategyKind::RandomInjection,
            churn_rate: 0.0,
            check_interval: 5,
            max_sybils: 5,
            sybil_threshold: 0,
            overload_factor: 2.0,
            net: NetConfig {
                // Fewer fingers per cycle keep the per-tick protocol cost
                // proportionate at this scale.
                fingers_per_cycle: 4,
                ..NetConfig::default()
            },
            max_ticks: 100_000,
            record_events: false,
            record_trace: false,
            fault: FaultPlan::default(),
            crash_rate: 0.0,
            crash_retirement: false,
            adversary: AdversaryPlan::default(),
            cross_check: CrossCheckConfig::default(),
            record_metrics: false,
            metrics_interval: None,
            metrics_ring: false,
        }
    }
}

/// Result of a protocol-level run.
#[derive(Debug, Clone)]
pub struct ProtocolRun {
    pub ticks: u64,
    pub ideal_ticks: u64,
    pub runtime_factor: f64,
    pub completed: bool,
    /// Protocol messages spent over the whole run (maintenance
    /// included); `messages.strategy_overhead()` isolates the balancing
    /// cost (load queries + invitations).
    pub messages: MessageStats,
    /// Sybil joins performed.
    pub sybils_created: u64,
    /// Sybil retirements performed (graceful leaves, or abrupt fails
    /// under [`ProtocolSimConfig::crash_retirement`]).
    pub sybils_retired: u64,
    /// Task keys permanently destroyed by crash-failures (no live
    /// replica existed at crash time). Always 0 with replication ≥ 1
    /// and a maintenance cycle between crashes.
    pub tasks_lost: u64,
    /// Workers removed by the crash plane (they never return).
    pub workers_crashed: u64,
    /// Tasks consumed per worker slot — the Gini input for the
    /// cross-substrate decision-quality comparison.
    pub tasks_done: Vec<u64>,
    /// Strategy decision trace (empty unless
    /// [`ProtocolSimConfig::record_events`]).
    pub events: EventLog,
    /// Flight-recorder trace (empty unless
    /// [`ProtocolSimConfig::record_trace`]).
    pub trace: Trace,
    /// Streaming metrics samples (empty unless
    /// [`ProtocolSimConfig::record_metrics`]).
    pub metrics: Vec<MetricsSample>,
}

/// Metric counter name for a message fate.
pub(crate) fn fate_metric(status: MessageStatus) -> &'static str {
    match status {
        MessageStatus::Delivered => metric_names::MSG_DELIVERED,
        MessageStatus::Dropped => metric_names::MSG_DROPPED,
        MessageStatus::TimedOut => metric_names::MSG_TIMED_OUT,
        MessageStatus::Unreachable => metric_names::MSG_UNREACHABLE,
    }
}

/// One physical worker: its primary Chord node plus live Sybil nodes.
struct PWorker {
    primary: Id,
    sybils: Vec<Id>,
    active: bool,
}

impl PWorker {
    fn vnodes(&self) -> impl Iterator<Item = Id> + '_ {
        std::iter::once(self.primary)
            .chain(self.sybils.iter().copied())
            .filter(|_| self.active)
    }
}

/// The [`Substrate`] over a real Chord network. Dispatch mirrors the
/// oracle-ring simulator; state queries go through the live protocol
/// structures and observable actions through real protocol operations.
struct ChordSubstrate {
    net: Network,
    workers: Vec<PWorker>,
    /// Waiting pool for churn (worker indices).
    waiting: Vec<usize>,
    /// Which worker controls each live node id.
    owner_of: BTreeMap<Id, usize>,
    params: StrategyParams,
    max_sybils: u32,
    active_count: usize,
    tick: u64,
    rng_strategy: DetRng,
    rng_churn: DetRng,
    /// Crash-victim selection stream — separate from churn and strategy
    /// so arming the fault plane never perturbs their draws.
    rng_faults: DetRng,
    sybils_created: u64,
    sybils_retired: u64,
    tasks_lost: u64,
    workers_crashed: u64,
    crash_retirement: bool,
    /// Armed Byzantine adversary: decides per owner whether a load
    /// reply is distorted. Stateless at query time.
    adversary: AdversaryState,
    events: EventLog,
    /// Span-structured flight recorder; free when disabled.
    trace: Trace,
    /// Streaming metrics recorder; free when disabled.
    hub: MetricsHub,
    /// Cumulative quarantine decisions attributed to each worker's
    /// defense, for the ring snapshot's quarantine markers.
    quarantined_marks: Vec<u64>,
}

impl ChordSubstrate {
    /// Records a load-balancing event into the event log and — when
    /// tracing — as a telemetry `Decision` on the current span, using
    /// the same `decision_fields` encoding as the oracle substrate so
    /// same-seed traces are comparable across substrates.
    fn emit_event(&mut self, event: SimEvent) {
        if self.trace.enabled() {
            let (name, worker, pos, value) = event.decision_fields();
            self.trace.decision(self.tick, name, worker, &pos, value);
        }
        if self.hub.enabled() {
            let (name, value) = event.metric_fields();
            self.hub.event(name, value);
        }
        self.events.push(event);
    }

    /// Snapshot the metrics registry plus a batch fairness sweep over
    /// the current per-worker loads (key movement happens inside the
    /// network here, so there is no per-delta hook to maintain a
    /// `LoadDist`; the batch sweep emits byte-identical gauges).
    fn sample_metrics(&mut self) {
        if !self.hub.enabled() {
            return;
        }
        let vnodes: usize = self
            .workers
            .iter()
            .filter(|w| w.active)
            .map(|w| 1 + w.sybils.len())
            .sum();
        self.hub.set_gauge(metric_names::VNODES, vnodes as u64);
        self.hub
            .set_gauge(metric_names::TASKS_REMAINING, self.net.total_keys() as u64);
        let mut loads = self.hub.take_scratch();
        let mut ring = Vec::new();
        for w in 0..self.workers.len() {
            if !self.workers[w].active {
                continue;
            }
            let load = self.worker_load(w);
            loads.push(load);
            if self.hub.ring_enabled() {
                ring.push(RingSlot {
                    worker: w as u64,
                    pos: self.workers[w].primary.to_hex(),
                    load,
                    sybils: self.workers[w].sybils.len() as u64,
                    quarantined: self.quarantined_marks[w],
                });
            }
        }
        let tick = self.tick;
        self.hub.sample_batch(tick, &mut loads, ring);
        self.hub.put_scratch(loads);
    }

    fn worker_load(&self, w: usize) -> u64 {
        self.workers[w]
            .vnodes()
            .filter_map(|v| self.net.node(v))
            .map(|n| n.keys.len() as u64)
            .sum()
    }

    /// The load value vnode `reporter` actually answers with: the truth
    /// unless its owner is Byzantine, in which case the distorted value
    /// is billed to the `lied` meta-counter and recorded as a `lied`
    /// decision. `about` is the vnode the answer describes (the
    /// reporter itself for direct probes, the probe target for relays).
    fn reported_load(&mut self, reporter: Id, about: Id, true_load: u64) -> u64 {
        let tick = self.tick;
        let lie = self
            .owner_of
            .get(&reporter)
            .copied()
            .and_then(|o| self.adversary.lie(o, true_load, tick).map(|l| (o, l)));
        let Some((owner, reported)) = lie else {
            return true_load;
        };
        self.net.stats.lied += 1;
        self.emit_event(SimEvent::LoadLied {
            tick,
            worker: owner,
            about,
            reported,
        });
        reported
    }

    fn worker_can_spawn(&self, w: usize) -> bool {
        self.workers[w].active
            && self.worker_load(w) <= self.params.sybil_threshold
            && (self.workers[w].sybils.len() as u32) < self.max_sybils
    }

    /// A real protocol join of a Sybil for `w` at `pos`. The join rides
    /// the retry/backoff machinery, so transient loss is absorbed; only
    /// an occupied position, an exhausted attempt budget, or a dead
    /// contact surface as errors.
    fn spawn_sybil_as(&mut self, w: usize, pos: Id) -> Result<u64, ActionError> {
        let contact = self.workers[w].primary;
        let retries_before = self.net.stats.retries;
        let joined = self.net.join_with_retry(pos, contact);
        // An occupied position still means the join reached the
        // ring — only the fault plane produces non-delivery here.
        let status = match &joined {
            Ok(()) | Err(NetworkError::DuplicateId(_)) => MessageStatus::Delivered,
            Err(NetworkError::TimedOut { .. }) => MessageStatus::TimedOut,
            Err(
                NetworkError::EmptyNetwork
                | NetworkError::UnknownNode(_)
                | NetworkError::LookupFailed { .. },
            ) => MessageStatus::Unreachable,
        };
        let retries = self.net.stats.retries - retries_before;
        if self.trace.enabled() {
            self.trace.message(self.tick, "join", status, retries);
        }
        self.hub.message(fate_metric(status), retries);
        match joined {
            Ok(()) => {}
            Err(NetworkError::DuplicateId(_)) => return Err(ActionError::Occupied),
            Err(NetworkError::TimedOut { .. }) => return Err(ActionError::TimedOut),
            Err(
                NetworkError::EmptyNetwork
                | NetworkError::UnknownNode(_)
                | NetworkError::LookupFailed { .. },
            ) => return Err(ActionError::Unreachable),
        }
        let acquired = self.net.node(pos).map(|n| n.keys.len() as u64).unwrap_or(0);
        self.workers[w].sybils.push(pos);
        self.owner_of.insert(pos, w);
        self.sybils_created += 1;
        let tick = self.tick;
        self.emit_event(SimEvent::SybilCreated {
            tick,
            worker: w,
            pos,
            acquired,
        });
        Ok(acquired)
    }

    fn retire_sybils_of(&mut self, w: usize) {
        let sybils = std::mem::take(&mut self.workers[w].sybils);
        let n = sybils.len() as u64;
        for s in sybils {
            if self.crash_retirement {
                // Abrupt variant: the Sybil process just exits. Keys
                // with a live replica get promoted by maintenance; the
                // rest are billed as lost rather than silently gone.
                if let Ok(rep) = self.net.fail(s) {
                    self.tasks_lost += rep.keys_lost;
                }
            } else {
                self.leave_expecting_gone(s);
            }
            self.owner_of.remove(&s);
        }
        self.sybils_retired += n;
        if n > 0 {
            let tick = self.tick;
            self.emit_event(SimEvent::SybilsRetired {
                tick,
                worker: w,
                count: n as u32,
            });
        }
    }

    /// Crash-fails one whole worker: every vnode vanishes abruptly, the
    /// worker never returns. Returns the keys permanently lost.
    fn crash_worker(&mut self, w: usize) -> u64 {
        let mut lost = 0;
        // The vnode iterator holds the worker table; the network and
        // owner map are disjoint fields, so no collection is needed.
        for v in self.workers[w].vnodes() {
            if let Ok(rep) = self.net.fail(v) {
                lost += rep.keys_lost;
            }
            self.owner_of.remove(&v);
        }
        self.workers[w].sybils.clear();
        self.workers[w].active = false;
        self.active_count -= 1;
        self.workers_crashed += 1;
        self.tasks_lost += lost;
        let tick = self.tick;
        self.emit_event(SimEvent::WorkerCrashed {
            tick,
            worker: w,
            keys_lost: lost,
        });
        lost
    }

    /// Crashes up to `count` uniformly chosen active workers, always
    /// sparing at least one so the ring survives.
    fn apply_crashes(&mut self, count: u32) {
        for _ in 0..count {
            if self.active_count <= 1 {
                return;
            }
            // Same victim the old `decision_order()[gen_range(..)]`
            // picked — the k-th active worker in index order — without
            // materializing the candidate list.
            let k = self.rng_faults.gen_range(0..self.active_count);
            let w = (0..self.workers.len())
                .filter(|&i| self.workers[i].active)
                .nth(k)
                .expect("active worker exists");
            self.crash_worker(w);
        }
    }

    /// Gracefully leaves `id`, tolerating only "already gone": under
    /// crash faults a node can vanish before its owner retires it.
    /// Anything else would be an ownership-bookkeeping bug, which the
    /// debug builds refuse to paper over.
    fn leave_expecting_gone(&mut self, id: Id) {
        if let Err(e) = self.net.leave(id) {
            debug_assert!(
                matches!(e, NetworkError::UnknownNode(_)),
                "graceful leave failed structurally: {e:?}"
            );
        }
    }
}

impl Substrate for ChordSubstrate {
    fn decision_order(&self) -> Vec<usize> {
        (0..self.workers.len())
            .filter(|&i| self.workers[i].active)
            .collect()
    }

    fn check_worker(&mut self, w: usize, strategy: &dyn Strategy) {
        let span = self.trace.open_span(self.tick, strategy.name(), w as u64);
        let mut ctx = ChordNodeCtx {
            sub: self,
            worker: w,
        };
        strategy.check_node(&mut ctx);
        let tick = self.tick;
        self.trace.close_span(tick, span);
    }

    fn check_omniscient(&mut self, _strategy: &dyn Strategy) -> bool {
        // A real network has no global view — that is the point of the
        // paper's decentralized strategies.
        false
    }

    fn churn_ops(&mut self) -> &mut dyn ChurnOps {
        self
    }
}

impl ChurnOps for ChordSubstrate {
    fn leave_candidates(&self) -> Vec<usize> {
        self.decision_order()
    }

    fn active_count(&self) -> usize {
        self.active_count
    }

    fn flip(&mut self, p: f64) -> bool {
        self.rng_churn.gen::<f64>() <= p
    }

    fn depart(&mut self, w: usize) {
        let sybils = std::mem::take(&mut self.workers[w].sybils);
        for s in sybils {
            self.leave_expecting_gone(s);
            self.owner_of.remove(&s);
        }
        let primary = self.workers[w].primary;
        self.leave_expecting_gone(primary);
        self.owner_of.remove(&primary);
        self.workers[w].active = false;
        self.active_count -= 1;
        self.waiting.push(w);
        let tick = self.tick;
        self.emit_event(SimEvent::WorkerLeft { tick, worker: w });
    }

    fn take_waiting(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.waiting)
    }

    fn requeue_waiting(&mut self, w: usize) {
        self.waiting.push(w);
    }

    fn rejoin(&mut self, w: usize) {
        let Some(contact) = self.workers.iter().find(|p| p.active).map(|p| p.primary) else {
            self.waiting.push(w);
            return;
        };
        let pos = loop {
            let p = Id::random(&mut self.rng_churn);
            if self.net.node(p).is_none() {
                break p;
            }
        };
        // Churn joins ride the same retry machinery as Sybil joins; a
        // worker whose join still times out stays in the waiting pool
        // and tries again next tick.
        let retries_before = self.net.stats.retries;
        let joined = self.net.join_with_retry(pos, contact);
        let status = match &joined {
            Ok(()) => MessageStatus::Delivered,
            Err(NetworkError::TimedOut { .. }) => MessageStatus::TimedOut,
            Err(
                NetworkError::DuplicateId(_)
                | NetworkError::EmptyNetwork
                | NetworkError::UnknownNode(_)
                | NetworkError::LookupFailed { .. },
            ) => MessageStatus::Unreachable,
        };
        let retries = self.net.stats.retries - retries_before;
        if self.trace.enabled() {
            self.trace.message(self.tick, "join", status, retries);
        }
        self.hub.message(fate_metric(status), retries);
        if joined.is_err() {
            self.waiting.push(w);
            return;
        }
        self.workers[w] = PWorker {
            primary: pos,
            sybils: Vec::new(),
            active: true,
        };
        self.owner_of.insert(pos, w);
        self.active_count += 1;
        let acquired = self.net.node(pos).map(|n| n.keys.len() as u64).unwrap_or(0);
        let tick = self.tick;
        self.emit_event(SimEvent::WorkerJoined {
            tick,
            worker: w,
            pos,
            acquired,
        });
    }
}

/// One worker's [`LocalView`]/[`Actions`] window onto the Chord
/// network: own nodes' key counts, the primary's live successor and
/// predecessor lists, and priced protocol messages for everything else.
struct ChordNodeCtx<'a> {
    sub: &'a mut ChordSubstrate,
    worker: usize,
}

impl LocalView for ChordNodeCtx<'_> {
    fn params(&self) -> StrategyParams {
        self.sub.params
    }

    fn load(&self) -> u64 {
        self.sub.worker_load(self.worker)
    }

    fn sybil_count(&self) -> usize {
        self.sub.workers[self.worker].sybils.len()
    }

    fn sybil_slots_left(&self) -> u32 {
        self.sub
            .max_sybils
            .saturating_sub(self.sub.workers[self.worker].sybils.len() as u32)
    }

    fn primary(&self) -> Id {
        self.sub.workers[self.worker].primary
    }

    fn own_vnode_loads(&self) -> Vec<(Id, u64)> {
        self.sub.workers[self.worker]
            .vnodes()
            .map(|v| {
                (
                    v,
                    self.sub
                        .net
                        .node(v)
                        .map(|n| n.keys.len() as u64)
                        .unwrap_or(0),
                )
            })
            .collect()
    }

    fn successor_list(&self) -> Vec<Id> {
        let primary = self.primary();
        let k = self.sub.params.num_neighbors;
        self.sub
            .net
            .node(primary)
            .map(|n| {
                n.successors
                    .iter()
                    .copied()
                    .filter(|&s| s != primary)
                    .take(k)
                    .collect()
            })
            .unwrap_or_default()
    }
}

impl Actions for ChordNodeCtx<'_> {
    fn query_load(&mut self, neighbor: Id) -> Result<u64, ActionError> {
        let tick = self.sub.tick;
        // The probe is billed whether or not it survives the network.
        if !self.sub.net.try_message(MessageKind::LoadQuery) {
            self.sub
                .trace
                .message(tick, "load_query", MessageStatus::TimedOut, 0);
            self.sub.hub.message(metric_names::MSG_TIMED_OUT, 0);
            return Err(ActionError::TimedOut);
        }
        match self.sub.net.node(neighbor).map(|n| n.keys.len() as u64) {
            Some(true_load) => {
                self.sub
                    .trace
                    .message(tick, "load_query", MessageStatus::Delivered, 0);
                self.sub.hub.message(metric_names::MSG_DELIVERED, 0);
                let worker = self.worker;
                // The querier only ever sees what the neighbor *says*.
                let load = self.sub.reported_load(neighbor, neighbor, true_load);
                self.sub.emit_event(SimEvent::LoadQueried {
                    tick,
                    worker,
                    neighbor,
                    load,
                });
                Ok(load)
            }
            // Stale successor-list entry pointing at a dead node: no
            // reply will ever come.
            None => {
                self.sub
                    .trace
                    .message(tick, "load_query", MessageStatus::Unreachable, 0);
                self.sub.hub.message(metric_names::MSG_UNREACHABLE, 0);
                Err(ActionError::Unreachable)
            }
        }
    }

    /// A relayed cross-checking probe: ask `relay` what it believes
    /// `target` holds (successors replicate each other's key ranges, so
    /// the relay can answer from its replica knowledge). Billed exactly
    /// like a direct probe; distorted iff the *relay*'s owner is
    /// Byzantine. Emits no `LoadQueried` decision — the round-level
    /// `note_probe` records the cross-checked outcome instead.
    fn query_load_via(&mut self, relay: Id, target: Id) -> Result<u64, ActionError> {
        let tick = self.sub.tick;
        if !self.sub.net.try_message(MessageKind::LoadQuery) {
            self.sub
                .trace
                .message(tick, "load_query", MessageStatus::TimedOut, 0);
            self.sub.hub.message(metric_names::MSG_TIMED_OUT, 0);
            return Err(ActionError::TimedOut);
        }
        if self.sub.net.node(relay).is_none() {
            self.sub
                .trace
                .message(tick, "load_query", MessageStatus::Unreachable, 0);
            self.sub.hub.message(metric_names::MSG_UNREACHABLE, 0);
            return Err(ActionError::Unreachable);
        }
        match self.sub.net.node(target).map(|n| n.keys.len() as u64) {
            Some(true_load) => {
                self.sub
                    .trace
                    .message(tick, "load_query", MessageStatus::Delivered, 0);
                self.sub.hub.message(metric_names::MSG_DELIVERED, 0);
                Ok(self.sub.reported_load(relay, target, true_load))
            }
            None => {
                self.sub
                    .trace
                    .message(tick, "load_query", MessageStatus::Unreachable, 0);
                self.sub.hub.message(metric_names::MSG_UNREACHABLE, 0);
                Err(ActionError::Unreachable)
            }
        }
    }

    fn note_probe(&mut self, target: Id, agreed: bool, estimate: u64) {
        let tick = self.sub.tick;
        let worker = self.worker;
        self.sub.emit_event(if agreed {
            SimEvent::ProbeAgreed {
                tick,
                worker,
                target,
                estimate,
            }
        } else {
            SimEvent::ProbeConflict {
                tick,
                worker,
                target,
                estimate,
            }
        });
    }

    fn note_quarantine(&mut self, reporter: Id, suspicion: u64) {
        let tick = self.sub.tick;
        let worker = self.worker;
        if let Some(&owner) = self.sub.owner_of.get(&reporter) {
            self.sub.quarantined_marks[owner] += 1;
        }
        self.sub.emit_event(SimEvent::Quarantined {
            tick,
            worker,
            reporter,
            suspicion,
        });
    }

    fn random_id(&mut self) -> Id {
        Id::random(&mut self.sub.rng_strategy)
    }

    fn spawn_sybil(&mut self, pos: Id) -> Result<u64, ActionError> {
        self.sub.spawn_sybil_as(self.worker, pos)
    }

    fn retire_sybils(&mut self) {
        self.sub.retire_sybils_of(self.worker);
    }

    fn note_gap_split(&mut self, pos: Id) {
        let tick = self.sub.tick;
        let worker = self.worker;
        self.sub
            .emit_event(SimEvent::NeighborGapSplit { tick, worker, pos });
    }

    fn split_target(&mut self, victim: Id) -> Option<Id> {
        // Chosen-ID placement would need the victim's key set — a real
        // node does not publish it, so the protocol substrate always
        // splits at the arc midpoint.
        let node = self.sub.net.node(victim)?;
        let pred = node.predecessor();
        if pred == victim {
            return None;
        }
        Some(ring::midpoint(pred, victim))
    }

    fn invite(&mut self, hot: Id) -> InviteOutcome {
        let inviter = self.worker;
        let k = self.sub.params.num_neighbors;
        let preds: Vec<Id> = match self.sub.net.node(hot) {
            Some(n) => n
                .predecessors
                .iter()
                .copied()
                .filter(|&p| p != hot)
                .take(k)
                .collect(),
            None => return InviteOutcome::NoNeighbors,
        };
        if preds.is_empty() {
            return InviteOutcome::NoNeighbors;
        }
        let tick = self.sub.tick;
        // The announcement costs its message even when the network eats
        // it; a lost invitation is simply re-sent on the next check
        // because the node is still overburdened then.
        if !self.sub.net.try_message(MessageKind::Invitation) {
            self.sub
                .trace
                .message(tick, "invitation", MessageStatus::Dropped, 0);
            self.sub.hub.message(metric_names::MSG_DROPPED, 0);
            return InviteOutcome::Unreachable;
        }
        self.sub
            .trace
            .message(tick, "invitation", MessageStatus::Delivered, 0);
        self.sub.hub.message(metric_names::MSG_DELIVERED, 0);
        self.sub.emit_event(SimEvent::InvitationSent {
            tick,
            worker: inviter,
        });
        let candidates: Vec<HelperCandidate> = preds
            .iter()
            .filter_map(|p| self.sub.owner_of.get(p).copied())
            .filter(|&o| o != inviter && self.sub.worker_can_spawn(o))
            .map(|o| HelperCandidate {
                worker: o,
                strength: 1, // the protocol substrate is homogeneous
                load: self.sub.worker_load(o),
            })
            .collect();
        let helper = pick_helper(&candidates, self.sub.params.strength_aware_invitation);
        let outcome = helper
            .and_then(|h| self.split_target(hot).map(|pos| (h, pos)))
            .and_then(|(h, pos)| {
                self.sub
                    .spawn_sybil_as(h, pos)
                    .ok()
                    .map(|acquired| (h, acquired))
            });
        match outcome {
            Some((helper, acquired)) => {
                self.sub.emit_event(SimEvent::InvitationHonored {
                    tick,
                    worker: inviter,
                    helper,
                    acquired,
                });
                InviteOutcome::Helped { acquired }
            }
            None => {
                self.sub.emit_event(SimEvent::InvitationRefused {
                    tick,
                    worker: inviter,
                });
                InviteOutcome::Refused
            }
        }
    }
}

/// Runs the computation on the protocol substrate and reports the
/// runtime factor, exactly like [`autobal_core::Sim`] but with every
/// DHT operation performed by the real implementation.
///
/// # Panics
/// Panics if `cfg.strategy` is [`StrategyKind::CentralizedOracle`] —
/// omniscience does not exist on a real network.
pub fn run_protocol_sim(cfg: &ProtocolSimConfig, seed: u64) -> ProtocolRun {
    let mut placement: DetRng = substream(seed, 0, domains::PLACEMENT);
    let mut task_rng: DetRng = substream(seed, 0, domains::TASKS);
    let net = Network::bootstrap(cfg.net, cfg.nodes, &mut placement);
    let node_ids = net.node_ids();
    let task_keys: Vec<Id> = (0..cfg.tasks).map(|_| Id::random(&mut task_rng)).collect();
    run_inner(cfg, seed, net, node_ids, task_keys)
}

/// [`run_protocol_sim`] with explicit node placement and task keys —
/// the hook the differential oracle-vs-protocol tests use to hand both
/// substrates bit-identical starting conditions.
pub fn run_protocol_sim_with_placement(
    cfg: &ProtocolSimConfig,
    seed: u64,
    node_ids: Vec<Id>,
    task_keys: Vec<Id>,
) -> ProtocolRun {
    let net = Network::from_ids(cfg.net, &node_ids).expect("distinct node ids");
    run_inner(cfg, seed, net, node_ids, task_keys)
}

fn run_inner(
    cfg: &ProtocolSimConfig,
    seed: u64,
    mut net: Network,
    node_ids: Vec<Id>,
    task_keys: Vec<Id>,
) -> ProtocolRun {
    assert!(
        cfg.strategy != StrategyKind::CentralizedOracle,
        "the centralized oracle needs the omniscient oracle-ring substrate"
    );
    for key in task_keys {
        net.insert_key(key);
    }
    net.maintenance_cycle();
    // Adversity begins only after the initial stabilization — the paper
    // assumes "the network starts our experiments stable".
    net.set_fault_plan(cfg.fault.clone());

    // Crash schedule: explicit events from the plan win; otherwise
    // `crash_rate` spreads ceil(rate × nodes) single-victim crashes
    // evenly across the nominal (ideal) duration.
    let ideal = (cfg.tasks as f64 / cfg.nodes as f64).ceil() as u64;
    let mut crash_schedule: Vec<(u64, u32)> =
        cfg.fault.crashes.iter().map(|c| (c.at, c.count)).collect();
    if crash_schedule.is_empty() && cfg.crash_rate > 0.0 {
        let total = (cfg.crash_rate * cfg.nodes as f64).ceil() as u32;
        for i in 0..total as u64 {
            let at = ((i + 1) * ideal.max(1)) / (total as u64 + 1);
            crash_schedule.push((at.max(1), 1));
        }
    }
    crash_schedule.sort_unstable();

    let mut workers: Vec<PWorker> = node_ids
        .iter()
        .map(|&id| PWorker {
            primary: id,
            sybils: Vec::new(),
            active: true,
        })
        .collect();
    let owner_of: BTreeMap<Id, usize> = node_ids
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();
    // The churn waiting pool "begins at the same initial size as the
    // network" (§IV-A).
    let mut waiting = Vec::new();
    if cfg.churn_rate > 0.0 {
        for _ in 0..cfg.nodes {
            waiting.push(workers.len());
            workers.push(PWorker {
                primary: Id::ZERO,
                sybils: Vec::new(),
                active: false,
            });
        }
    }

    let mut stack = StrategyStack::new();
    if cfg.churn_rate > 0.0 {
        stack.push(Box::new(BackgroundChurn {
            leave_p: cfg.churn_rate,
            join_p: cfg.churn_rate,
        }));
    }
    if let Some(s) = strategy_for(cfg.strategy) {
        // Cross-checking is a transparent decorator: with the default
        // (disabled) config this returns `s` untouched.
        stack.push(wrap_if_enabled(s, &cfg.cross_check));
    }

    let n_workers = workers.len();
    let mut sub = ChordSubstrate {
        net,
        active_count: cfg.nodes,
        workers,
        waiting,
        owner_of,
        params: StrategyParams {
            sybil_threshold: cfg.sybil_threshold,
            overload_threshold: (cfg.overload_factor * cfg.tasks as f64 / cfg.nodes.max(1) as f64)
                .ceil() as u64,
            num_neighbors: cfg.net.successor_list_len,
            chosen_ids: false,
            strength_aware_invitation: false,
        },
        max_sybils: cfg.max_sybils,
        tick: 0,
        rng_strategy: substream(seed, 0, domains::STRATEGY),
        rng_churn: substream(seed, 0, domains::CHURN),
        rng_faults: substream(seed, 0, domains::FAULTS),
        sybils_created: 0,
        sybils_retired: 0,
        tasks_lost: 0,
        workers_crashed: 0,
        crash_retirement: cfg.crash_retirement,
        adversary: AdversaryState::new(cfg.adversary.clone(), cfg.nodes),
        events: EventLog::new(cfg.record_events),
        trace: {
            let mut trace = Trace::new(cfg.record_trace);
            trace.run_start(0, "chord", cfg.strategy.label(), seed);
            trace
        },
        hub: MetricsHub::new(cfg.record_metrics).with_ring(cfg.metrics_ring),
        quarantined_marks: vec![0; n_workers],
    };

    let mut tasks_done = vec![0u64; sub.workers.len()];
    let mut next_crash = 0usize;
    let metrics_every = cfg
        .record_metrics
        .then(|| cfg.metrics_interval.unwrap_or(1).max(1));
    if metrics_every.is_some() {
        sub.sample_metrics();
    }
    while sub.net.total_keys() > 0 && sub.tick < cfg.max_ticks {
        sub.tick += 1;
        sub.net.set_clock(sub.tick);

        // 0. Scheduled crash-failures land before anything else this
        // tick — adversity does not wait for the protocol.
        while next_crash < crash_schedule.len() && crash_schedule[next_crash].0 <= sub.tick {
            let (_, count) = crash_schedule[next_crash];
            sub.apply_crashes(count);
            next_crash += 1;
        }

        // 1. Churn layers fire every tick; 2. Sybil layers on cadence —
        // the same dispatch the oracle-ring simulator runs.
        stack.on_tick(&mut sub);
        if sub.tick.is_multiple_of(cfg.check_interval) {
            stack.on_check(&mut sub);
        }

        // Work phase: each active worker consumes one task from its
        // nodes (primary first, then Sybils). The vnode iterator and
        // the network are disjoint fields, so no per-worker collection.
        let mut consumed = 0u64;
        for (w, done) in tasks_done.iter_mut().enumerate() {
            let Some(worker) = sub.workers.get(w) else {
                continue;
            };
            for v in worker.vnodes() {
                let popped = sub
                    .net
                    .node_mut(v)
                    .and_then(|n| n.keys.pop_first())
                    .is_some();
                if popped {
                    *done += 1;
                    consumed += 1;
                    break;
                }
            }
        }
        sub.hub.inc(metric_names::TICKS);
        sub.hub.add(metric_names::TASKS_DONE, consumed);

        // One maintenance cycle per tick (§V: "a tick is enough time to
        // accomplish at least one maintenance cycle").
        sub.net.maintenance_cycle();
        if let Some(k) = metrics_every {
            if sub.tick.is_multiple_of(k) || sub.net.total_keys() == 0 {
                sub.sample_metrics();
            }
        }
    }

    let completed = sub.net.total_keys() == 0;
    sub.trace.run_end(sub.tick, completed);

    ProtocolRun {
        ticks: sub.tick,
        ideal_ticks: ideal.max(1),
        runtime_factor: sub.tick as f64 / ideal.max(1) as f64,
        completed,
        messages: sub.net.stats.clone(),
        sybils_created: sub.sybils_created,
        sybils_retired: sub.sybils_retired,
        tasks_lost: sub.tasks_lost,
        workers_crashed: sub.workers_crashed,
        tasks_done,
        events: sub.events,
        trace: sub.trace,
        metrics: sub.hub.into_samples(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(strategy: StrategyKind) -> ProtocolSimConfig {
        ProtocolSimConfig {
            nodes: 32,
            tasks: 1_600,
            strategy,
            ..ProtocolSimConfig::default()
        }
    }

    #[test]
    fn protocol_baseline_matches_harmonic_ballpark() {
        let res = run_protocol_sim(&small(StrategyKind::None), 1);
        assert!(res.completed);
        // H_32 ≈ 4.06; generous envelope for a single trial.
        assert!(
            res.runtime_factor > 2.0 && res.runtime_factor < 7.5,
            "baseline factor {}",
            res.runtime_factor
        );
        assert_eq!(res.sybils_created, 0);
        assert_eq!(res.messages.strategy_overhead(), 0);
    }

    #[test]
    fn random_injection_wins_on_the_real_substrate_too() {
        let base = run_protocol_sim(&small(StrategyKind::None), 2);
        let inj = run_protocol_sim(&small(StrategyKind::RandomInjection), 2);
        assert!(inj.completed);
        assert!(inj.sybils_created > 0);
        assert!(
            inj.runtime_factor < base.runtime_factor * 0.75,
            "protocol-level injection {} vs baseline {}",
            inj.runtime_factor,
            base.runtime_factor
        );
    }

    #[test]
    fn protocol_and_oracle_simulators_agree() {
        // The whole point: the oracle-ring simulator and the protocol
        // substrate must tell the same story on matched configurations.
        let proto = run_protocol_sim(&small(StrategyKind::RandomInjection), 3);
        let oracle = autobal_core::Sim::new(
            autobal_core::SimConfig {
                nodes: 32,
                tasks: 1_600,
                strategy: autobal_core::StrategyKind::RandomInjection,
                ..autobal_core::SimConfig::default()
            },
            3,
        )
        .run();
        let diff = (proto.runtime_factor - oracle.runtime_factor).abs();
        assert!(
            diff < 1.0,
            "protocol {} vs oracle {} should agree within a factor unit",
            proto.runtime_factor,
            oracle.runtime_factor
        );
    }

    #[test]
    fn protocol_run_spends_real_messages() {
        let res = run_protocol_sim(&small(StrategyKind::RandomInjection), 4);
        assert!(res.messages.stabilize > 0);
        assert!(res.messages.find_successor_hops > 0, "joins routed");
        assert!(res.messages.key_transfer > 0, "handoffs happened");
        assert!(res.messages.replica_push > 0, "active backup ran");
    }

    #[test]
    fn neighbor_injection_runs_on_the_protocol() {
        let base = run_protocol_sim(&small(StrategyKind::None), 5);
        let ni = run_protocol_sim(&small(StrategyKind::NeighborInjection), 5);
        assert!(ni.completed);
        assert!(ni.sybils_created > 0, "neighbor Sybils joined for real");
        // Plain neighbor estimates from free successor-list state.
        assert_eq!(ni.messages.load_query, 0);
        assert!(
            ni.runtime_factor < base.runtime_factor,
            "neighbor {} vs baseline {}",
            ni.runtime_factor,
            base.runtime_factor
        );
    }

    #[test]
    fn smart_neighbor_pays_for_its_load_queries() {
        let smart = run_protocol_sim(&small(StrategyKind::SmartNeighbor), 6);
        assert!(smart.completed);
        assert!(smart.sybils_created > 0);
        assert!(
            smart.messages.load_query > 0,
            "probing must be billed to the network"
        );
        assert_eq!(
            smart.messages.strategy_overhead(),
            smart.messages.load_query + smart.messages.invitation
        );
    }

    #[test]
    fn invitation_runs_end_to_end_on_the_protocol() {
        // A tight overload cutoff makes initially hot nodes call for
        // help; helpers answer with real Sybil joins.
        let inv = run_protocol_sim(
            &ProtocolSimConfig {
                overload_factor: 1.0,
                ..small(StrategyKind::Invitation)
            },
            7,
        );
        assert!(inv.completed);
        assert!(inv.messages.invitation > 0, "announcements were sent");
        assert!(inv.sybils_created > 0, "helpers actually joined");
        assert!(inv.messages.strategy_overhead() >= inv.messages.invitation);
    }

    #[test]
    fn background_churn_composes_with_injection_on_the_protocol() {
        let res = run_protocol_sim(
            &ProtocolSimConfig {
                churn_rate: 0.005,
                record_events: true,
                ..small(StrategyKind::RandomInjection)
            },
            8,
        );
        assert!(res.completed);
        let left = res
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::WorkerLeft { .. }))
            .count();
        let joined = res
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::WorkerJoined { .. }))
            .count();
        assert!(left > 0, "churn departures happened");
        assert!(joined > 0, "churn rejoins happened");
        assert!(res.sybils_created > 0, "injection kept working under churn");
    }

    #[test]
    fn oracle_strategy_is_rejected() {
        let r = std::panic::catch_unwind(|| {
            run_protocol_sim(&small(StrategyKind::CentralizedOracle), 1)
        });
        assert!(r.is_err(), "omniscience must not exist on a real network");
    }

    #[test]
    fn crash_failures_lose_nothing_under_replication() {
        // Acceptance criterion: with replication ≥ 2, a 5% crash rate
        // destroys zero tasks — every crashed node's keys had a live
        // replica (maintenance runs every tick).
        let res = run_protocol_sim(
            &ProtocolSimConfig {
                crash_rate: 0.05,
                ..small(StrategyKind::RandomInjection)
            },
            9,
        );
        assert!(res.completed, "run must finish despite crashes");
        assert!(res.workers_crashed > 0, "the crash plane actually fired");
        assert_eq!(
            res.tasks_lost, 0,
            "replication_factor 5 must cover every crash victim"
        );
        assert_eq!(res.messages.keys_lost, 0);
    }

    #[test]
    fn unreplicated_crashes_report_their_losses_explicitly() {
        // With replication off, crash-failures genuinely destroy work —
        // and the run must say so rather than hang or lie.
        let res = run_protocol_sim(
            &ProtocolSimConfig {
                crash_rate: 0.1,
                net: NetConfig {
                    replication_factor: 0,
                    fingers_per_cycle: 4,
                    ..NetConfig::default()
                },
                ..small(StrategyKind::None)
            },
            10,
        );
        assert!(res.workers_crashed > 0);
        assert!(
            res.tasks_lost > 0,
            "no replicas ⇒ crashed nodes' keys must be reported lost"
        );
        assert_eq!(res.tasks_lost, res.messages.keys_lost);
        assert!(res.completed, "the survivors still finish what remains");
    }

    #[test]
    fn both_sybil_retirement_paths_conserve_replicated_keys() {
        // Satellite: graceful leave and crash-style retirement must
        // agree on the macro outcome when replication covers the keys —
        // the run completes and nothing is destroyed either way.
        for crash_retirement in [false, true] {
            let res = run_protocol_sim(
                &ProtocolSimConfig {
                    crash_retirement,
                    ..small(StrategyKind::RandomInjection)
                },
                11,
            );
            assert!(res.completed, "crash_retirement={crash_retirement}");
            assert!(res.sybils_retired > 0, "retirements exercised both paths");
            assert_eq!(
                res.tasks_lost, 0,
                "replicated Sybil keys must survive retirement (crash={crash_retirement})"
            );
        }
    }

    #[test]
    fn lossy_links_degrade_gracefully() {
        // Acceptance criterion: 10% loss costs at most 2× the
        // fault-free runtime factor, for every strategy.
        for kind in [
            StrategyKind::None,
            StrategyKind::RandomInjection,
            StrategyKind::NeighborInjection,
            StrategyKind::SmartNeighbor,
            StrategyKind::Invitation,
        ] {
            let clean = run_protocol_sim(&small(kind), 12);
            let lossy = run_protocol_sim(
                &ProtocolSimConfig {
                    fault: FaultPlan::lossy(12, 0.10),
                    ..small(kind)
                },
                12,
            );
            assert!(lossy.completed, "{kind:?} must finish at 10% loss");
            assert!(lossy.messages.dropped > 0, "{kind:?}: faults actually bit");
            assert!(
                lossy.runtime_factor <= clean.runtime_factor * 2.0,
                "{kind:?}: lossy {} vs clean {}",
                lossy.runtime_factor,
                clean.runtime_factor
            );
        }
    }

    #[test]
    fn inert_fault_plan_changes_nothing_on_the_protocol() {
        // Bit-for-bit: the default (inert) plan must not perturb a
        // single counter relative to the pre-fault-plane code path.
        let a = run_protocol_sim(&small(StrategyKind::SmartNeighbor), 13);
        let b = run_protocol_sim(
            &ProtocolSimConfig {
                fault: FaultPlan::default(),
                ..small(StrategyKind::SmartNeighbor)
            },
            13,
        );
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.sybils_created, b.sybils_created);
        assert_eq!(a.messages.dropped, 0);
        assert_eq!(a.messages.retries, 0);
    }

    #[test]
    fn load_queried_events_mirror_the_protocol_query_counter() {
        // Satellite: every billed load query that got an answer shows up
        // as a LoadQueried event — on a faultless network, all of them.
        let res = run_protocol_sim(
            &ProtocolSimConfig {
                record_events: true,
                ..small(StrategyKind::SmartNeighbor)
            },
            14,
        );
        let queried = res
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::LoadQueried { .. }))
            .count() as u64;
        assert!(queried > 0);
        assert_eq!(queried, res.messages.load_query);
    }

    #[test]
    fn plain_neighbor_records_gap_splits_on_the_protocol() {
        let res = run_protocol_sim(
            &ProtocolSimConfig {
                record_events: true,
                ..small(StrategyKind::NeighborInjection)
            },
            15,
        );
        let splits = res
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::NeighborGapSplit { .. }))
            .count() as u64;
        // Every plain-neighbor spawn attempt is preceded by a gap-split
        // estimate; occupied midpoints mean attempts can exceed joins.
        assert!(splits > 0);
        assert!(splits >= res.sybils_created);
    }

    #[test]
    fn invitation_honored_events_carry_the_helper_on_the_protocol() {
        let res = run_protocol_sim(
            &ProtocolSimConfig {
                overload_factor: 1.0,
                record_events: true,
                ..small(StrategyKind::Invitation)
            },
            16,
        );
        let mut honored = 0u64;
        for e in res.events.events() {
            if let SimEvent::InvitationHonored { worker, helper, .. } = e {
                honored += 1;
                assert_ne!(worker, helper, "a node cannot honor its own call");
            }
        }
        assert!(honored > 0, "some invitation was honored");
        let sent = res
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::InvitationSent { .. }))
            .count() as u64;
        let refused = res
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::InvitationRefused { .. }))
            .count() as u64;
        assert_eq!(sent, honored + refused);
    }

    #[test]
    fn protocol_trace_is_framed_and_spans_the_strategy() {
        use autobal_telemetry::{summarize, TraceBody};
        let res = run_protocol_sim(
            &ProtocolSimConfig {
                record_trace: true,
                ..small(StrategyKind::SmartNeighbor)
            },
            17,
        );
        let records = res.trace.records();
        assert!(matches!(records[0].body, TraceBody::RunStart { .. }));
        assert!(matches!(
            records[records.len() - 1].body,
            TraceBody::RunEnd { .. }
        ));
        let s = summarize(records);
        assert_eq!(s.substrate, "chord");
        assert_eq!(s.strategy, "smart");
        assert!(s.completed);
        assert!(s.spans > 0, "strategy checks opened spans");
        assert!(s.decisions > 0);
        // load_query + invitation probes are traced individually; join
        // messages too — at least every load query must appear.
        assert!(s.messages.delivered >= res.messages.load_query);
        assert!(s.last_time <= res.ticks);
    }

    #[test]
    fn protocol_trace_is_disabled_by_default_and_byte_stable() {
        use autobal_telemetry::to_jsonl;
        let off = run_protocol_sim(&small(StrategyKind::SmartNeighbor), 18);
        assert!(off.trace.is_empty(), "tracing must be strictly opt-in");
        let cfg = ProtocolSimConfig {
            record_trace: true,
            ..small(StrategyKind::SmartNeighbor)
        };
        let a = run_protocol_sim(&cfg, 18);
        let b = run_protocol_sim(&cfg, 18);
        assert_eq!(to_jsonl(a.trace.records()), to_jsonl(b.trace.records()));
        // Tracing must not perturb the run itself.
        assert_eq!(a.ticks, off.ticks);
        assert_eq!(a.messages, off.messages);
    }

    #[test]
    fn inert_adversary_plan_changes_nothing_on_the_protocol() {
        use autobal_chord::LiePolicy;
        // Non-tautological inert pin: a zero-fraction plan with a
        // non-default seed/policy/gain, plus a disabled (k = 0)
        // cross-check with non-default knobs, must not perturb a
        // single counter or decision relative to the plain default.
        let base = ProtocolSimConfig {
            record_events: true,
            ..small(StrategyKind::SmartNeighbor)
        };
        let a = run_protocol_sim(&base, 19);
        let b = run_protocol_sim(
            &ProtocolSimConfig {
                adversary: AdversaryPlan {
                    seed: 99,
                    fraction: 0.0,
                    policy: LiePolicy::OverReport,
                    gain: 9,
                },
                cross_check: CrossCheckConfig {
                    k: 0,
                    tolerance: 0.9,
                    quarantine_after: 1,
                },
                ..base.clone()
            },
            19,
        );
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.events.events(), b.events.events());
        assert_eq!(a.sybils_created, b.sybils_created);
        assert_eq!(b.messages.lied, 0);
    }

    #[test]
    fn byzantine_liars_distort_protocol_probes() {
        use autobal_chord::LiePolicy;
        // 25% over-reporting liars: smart-neighbor probes must see the
        // distorted loads (billed on the `lied` meta-counter, mirrored
        // one-for-one by `LoadLied` events) and reach different
        // decisions than the clean run.
        let clean = run_protocol_sim(
            &ProtocolSimConfig {
                record_events: true,
                ..small(StrategyKind::SmartNeighbor)
            },
            20,
        );
        let lied = run_protocol_sim(
            &ProtocolSimConfig {
                record_events: true,
                adversary: AdversaryPlan::lying(7, 0.25, LiePolicy::OverReport),
                ..small(StrategyKind::SmartNeighbor)
            },
            20,
        );
        assert!(lied.completed, "liars slow the run down, not break it");
        assert!(lied.messages.lied > 0, "some probe hit a liar");
        let lied_events = lied
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::LoadLied { .. }))
            .count() as u64;
        assert_eq!(lied_events, lied.messages.lied);
        assert_ne!(
            clean.events.events(),
            lied.events.events(),
            "distorted reports must change the decision stream"
        );
    }

    #[test]
    fn cross_checking_bills_probes_and_quarantines_liars() {
        use autobal_chord::LiePolicy;
        // Over-reporting by gain 4 always conflicts with an honest
        // median (|4L+4 − L| > 0.5·max(L,1) for every L), so every
        // cross-checked probe round about a liar books suspicion and
        // the third one quarantines it.
        let plan = AdversaryPlan::lying(7, 0.25, LiePolicy::OverReport);
        let undefended = run_protocol_sim(
            &ProtocolSimConfig {
                record_events: true,
                adversary: plan.clone(),
                ..small(StrategyKind::SmartNeighbor)
            },
            21,
        );
        let defended = run_protocol_sim(
            &ProtocolSimConfig {
                record_events: true,
                adversary: plan,
                cross_check: CrossCheckConfig::with_budget(2),
                ..small(StrategyKind::SmartNeighbor)
            },
            21,
        );
        assert!(defended.completed);
        assert!(
            defended.messages.load_query > undefended.messages.load_query,
            "redundant probes must be billed as real load queries"
        );
        let conflicts = defended
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::ProbeConflict { .. }))
            .count() as u64;
        let mut quarantined = 0u64;
        for e in defended.events.events() {
            if let SimEvent::Quarantined { suspicion, .. } = e {
                quarantined += 1;
                assert!(*suspicion >= 3, "quarantine fires at the threshold");
            }
        }
        assert!(conflicts > 0, "liars were caught in the act");
        assert!(quarantined > 0, "repeat offenders got quarantined");
        assert!(
            conflicts >= quarantined * 3,
            "each quarantine needs at least `quarantine_after` conflicts"
        );
    }
}
